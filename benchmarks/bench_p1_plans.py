"""P1 — Planning throughput: controller plans per second, isolated.

The controller's :meth:`~repro.core.controller.OffloadController.plan`
path (build context → partition → allocate → refine → deploy) is the
per-decision cost of the offloading loop; the remediation plane replans
on every goodput-forecast breach, so plans/second bounds how often the
closed loop can react.  This bench isolates the plan path from the
simulation loop: one controller is built and profiled offline once,
then ``plan(input_mb)`` is timed over a fixed cycle of input sizes
(redeploys are mostly no-ops after the first pass — exactly the steady
state replanning sees).

Deterministic checks: the runtime meter's ``plans_computed`` counter
must equal the number of plan calls (the plan path is a metered hot
path), and the final partition digest regenerates bit-identically.
Plans/second itself is host-dependent and tracked as a trend via the
bench history ledger rather than hard-gated.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.apps import photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.metrics import Table, stable_digest

from _common import (
    MetricSpec,
    emit,
    register_bench,
    timed_rows,
    write_bench_summary,
)

SHORT = os.environ.get("REPRO_BENCH_SHORT", "") not in ("", "0")

N_PLANS = 60 if SHORT else 400
REPEATS = 3 if SHORT else 5
INPUT_CYCLE = (1.0, 2.0, 4.0, 8.0)
SEED = 7


def build_controller() -> OffloadController:
    env = Environment.build(seed=SEED, connectivity="4g")
    controller = OffloadController(env, photo_backup_app())
    controller.profile_offline()
    return controller


def _plan_burst(controller: OffloadController, n: int) -> float:
    """Time ``n`` plan() calls cycling the input sizes; returns seconds."""
    cycle = INPUT_CYCLE
    before = controller.env.sim.meter.plans_computed
    started = perf_counter()
    for i in range(n):
        controller.plan(input_mb=cycle[i % len(cycle)])
    elapsed = perf_counter() - started
    # The plan path is a metered hot path: every call must land exactly
    # one plans_computed increment.
    assert controller.env.sim.meter.plans_computed - before == n
    return elapsed


@register_bench(
    "P1",
    metrics=(
        # Host-dependent throughput: report-only, trend-tracked via the
        # bench history ledger.
        MetricSpec("plans_per_s", kind="ratio", direction="higher",
                   threshold=None),
        MetricSpec("partition_digest", kind="equal", same_mode=True),
    ),
    deterministic=("mode", "plans", "repeats", "input_cycle", "seed",
                   "n_cloud", "partition_digest"),
    primary="plans_per_s",
)
def run_p1() -> Table:
    controller = build_controller()
    # Warm pass: first-time deploys and allocator caches settle, so the
    # timed region measures steady-state replanning.
    partition = controller.plan(input_mb=INPUT_CYCLE[0])

    best = timed_rows(
        {"plans": lambda: _plan_burst(controller, N_PLANS)},
        repeats=REPEATS,
        warmup=False,
    )
    seconds = best["plans"]
    plans_per_s = N_PLANS / seconds

    # Determinism: replanning the same size reproduces the partition.
    partition = controller.plan(input_mb=INPUT_CYCLE[0])
    digest = stable_digest(
        {f"cloud/{name}": 1.0 for name in sorted(partition.cloud)}
    )

    table = Table(
        ["metric", "value"],
        title=f"P1: planning throughput — {N_PLANS} plans per round, "
              f"input cycle {list(INPUT_CYCLE)} MB, min of {REPEATS}",
        precision=3,
    )
    table.add_row("plans per round", N_PLANS)
    table.add_row("wall s (min of N)", seconds)
    table.add_row("plans / s", plans_per_s)
    table.add_row("cloud components", len(partition.cloud))
    table.add_row("partition digest", digest[:16])

    write_bench_summary(
        "P1",
        {
            "mode": "short" if SHORT else "full",
            "plans": N_PLANS,
            "repeats": REPEATS,
            "input_cycle": list(INPUT_CYCLE),
            "seed": SEED,
            "wall_s": seconds,
            "plans_per_s": plans_per_s,
            "n_cloud": len(partition.cloud),
            "partition_digest": digest,
        },
    )
    return table


def bench_p1_plans(benchmark):
    table = benchmark.pedantic(run_p1, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_p1())
