"""A6 — Ablation: UE-coordinated vs workflow-orchestrated execution.

Two ways to run the cloud side of a partition:

* **controller** — the UE coordinates every invocation, staying
  awake-idle (25 mW) for the whole cloud episode; no orchestration fees;
* **workflow** — a server-side Step-Functions-class engine runs the
  cloud sub-DAG while the UE deep-sleeps (3 mW); each execution bills
  state transitions.

Expected shape: the workflow's energy saving grows with the cloud
episode's length (input size), while its fee overhead is a constant per
job — so orchestration wins energy on every job and the fee stays a
small multiple of the compute bill.
"""

import pytest

from repro import Environment, Job, OffloadController
from repro.apps import ml_training_app, nightly_analytics_app
from repro.core.partitioning import FixedPartitioner, Partition
from repro.core.workflow_runner import WorkflowOffloadRunner
from repro.metrics import Table

from _common import emit

INPUT_SIZES_MB = [2.0, 8.0, 32.0]
SEED = 151


def run_pair(app_factory, input_mb):
    app = app_factory()
    partition = Partition.full_offload(app)

    env_ctl = Environment.build(seed=SEED, execution_noise_sigma=0.0)
    controller = OffloadController(
        env_ctl, app_factory(), partitioner=FixedPartitioner(partition)
    )
    controller.profile_offline()
    controller.plan(input_mb=input_mb)
    ctl = controller.run_workload(
        [Job(controller.app, input_mb=input_mb, deadline=10 * 3600.0)]
    ).results[0]

    env_wf = Environment.build(seed=SEED, execution_noise_sigma=0.0)
    runner = WorkflowOffloadRunner(
        env_wf,
        app_factory(),
        partition,
        memory_plan={n: d.memory_mb for n, d in controller.allocation.items()},
    )
    wf = runner.run_workload(
        [Job(runner.app, input_mb=input_mb, deadline=10 * 3600.0)]
    ).results[0]
    return ctl, wf


def run_a6() -> Table:
    table = Table(
        ["app", "input MB", "mode", "UE energy J", "cloud $", "resp s"],
        title="A6: coordination mode — awake-idle controller vs "
              "deep-sleep workflow",
        precision=3,
    )
    savings = []
    for app_factory in (nightly_analytics_app, ml_training_app):
        for input_mb in INPUT_SIZES_MB:
            ctl, wf = run_pair(app_factory, input_mb)
            name = app_factory().name
            table.add_row(name, input_mb, "controller", ctl.ue_energy_j,
                          ctl.cloud_cost_usd, ctl.response_time)
            table.add_row(name, input_mb, "workflow", wf.ue_energy_j,
                          wf.cloud_cost_usd, wf.response_time)
            savings.append(
                (name, input_mb, ctl.ue_energy_j - wf.ue_energy_j,
                 wf.cloud_cost_usd - ctl.cloud_cost_usd)
            )
            # Workflow always saves coordinator energy and always pays fees.
            assert wf.ue_energy_j < ctl.ue_energy_j, (name, input_mb)
            assert wf.cloud_cost_usd > ctl.cloud_cost_usd, (name, input_mb)
    # The energy saving grows with input size (longer cloud episodes).
    for name in {s[0] for s in savings}:
        series = [s[2] for s in savings if s[0] == name]
        assert series == sorted(series), (name, series)
    return table


def bench_a6_orchestration(benchmark):
    table = benchmark.pedantic(run_a6, rounds=1, iterations=1)
    emit(table)
    # The fee overhead is tiny relative to the compute bill on the
    # heavy app (orchestration is worth paying for long phases).
    rows = [r for r in table.rows if r[0] == "ml_training" and r[1] == 32.0]
    by_mode = {r[2]: r for r in rows}
    fee = by_mode["workflow"][4] - by_mode["controller"][4]
    assert fee < 0.25 * by_mode["controller"][4]


if __name__ == "__main__":
    emit(run_a6())
