"""F4 — Batching window vs cost and cold starts.

Diurnal arrivals with long inter-arrival gaps (so an eager dispatcher
cold-starts nearly every job), swept over the batcher's window size.
Expected shape: cold-start fraction and per-job platform overhead fall
as the window grows — jobs arrive at the platform together and reuse
warm instances — until the window exceeds the jobs' slack and deadline
pressure forces early dispatches again (visible as the curve flattening,
never as misses).
"""

import pytest

from repro import DeadlineBatcher, EagerScheduler, Environment, Job, OffloadController
from repro.apps import nightly_analytics_app
from repro.metrics import Table
from repro.serverless.platform import PlatformConfig
from repro.sim.rng import RngStream
from repro.traces import DiurnalArrivals

from _common import emit

WINDOWS_S = [0.0, 300.0, 900.0, 3600.0, 10800.0]  # 0 = eager
N_JOBS = 18
INPUT_MB = 6.0
SLACK_S = 6 * 3600.0
SEED = 66
KEEP_ALIVE_S = 240.0


def make_jobs(app):
    arrivals = DiurnalArrivals(
        base_rate=N_JOBS / 30_000.0, amplitude=0.6, rng=RngStream(SEED)
    )
    jobs = []
    for released in arrivals.times(horizon=10 * 30_000.0):
        jobs.append(
            Job(app, input_mb=INPUT_MB, released_at=released,
                deadline=released + SLACK_S)
        )
        if len(jobs) >= N_JOBS:
            break
    return jobs


def run_window(window_s):
    env = Environment.build(
        seed=SEED,
        connectivity="4g",
        platform_config=PlatformConfig(keep_alive_s=KEEP_ALIVE_S),
    )
    scheduler = (
        EagerScheduler() if window_s == 0.0 else DeadlineBatcher(window_s=window_s)
    )
    controller = OffloadController(env, nightly_analytics_app(), scheduler=scheduler)
    controller.profile_offline()
    controller.plan(input_mb=INPUT_MB)
    report = controller.run_workload(make_jobs(controller.app))
    return report, env


def run_f4() -> Table:
    table = Table(
        ["window s", "cold %", "$/job", "mean resp s", "miss %"],
        title=f"F4: batching window sweep — {N_JOBS} analytics jobs, "
              f"{SLACK_S / 3600:.0f} h slack, keep-alive {KEEP_ALIVE_S:.0f} s",
        precision=3,
    )
    cold_fractions = []
    for window in WINDOWS_S:
        report, env = run_window(window)
        cold = env.platform.cold_start_fraction()
        cold_fractions.append(cold)
        table.add_row(
            window, 100 * cold,
            report.total_cloud_cost_usd / max(report.jobs_completed, 1),
            report.mean_response_s, 100 * report.deadline_miss_rate,
        )
        assert report.deadline_miss_rate == 0.0, window
    # Batching at any window beats eager on cold starts; the widest
    # window gives the largest reduction.
    assert min(cold_fractions[1:]) < cold_fractions[0]
    assert cold_fractions[-1] <= cold_fractions[0] * 0.5
    return table


def bench_f4_batching(benchmark):
    table = benchmark.pedantic(run_f4, rounds=1, iterations=1)
    emit(table)
    # Response time grows with the window — the explicit trade.
    responses = table.column("mean resp s")
    assert responses[-1] > responses[0]


if __name__ == "__main__":
    emit(run_f4())
