"""F8 — The non-time-critical stack, assembled lever by lever.

"Non-time-critical" is not one mechanism but a stack of them, each
unlocked by the same property (slack).  Starting from the interactive
baseline, the levers are added cumulatively:

1. **interactive** — latency-dominant weights, eager dispatch, full speed;
2. **+ NTC weights** — the partitioner optimises energy/cost, not seconds;
3. **+ batching** — dispatches align on 15-min windows (warm pools);
4. **+ DVFS** — local residue crawls at the lowest deadline-safe
   frequency;
5. **+ cost window** — dispatch seeks the cheapest instant of a diurnal
   congestion-price signal inside the slack.

Measured on the video-highlights app over a 3G uplink with six hours of
slack per job.  Expected shape: each lever buys its own metric — batching
cuts cold starts, DVFS trims local energy, the cost window slashes the
congestion price paid — while deadline misses stay at zero throughout.
Response time is the currency being spent.  (UE energy moves little here
because offloading itself — step 2's domain — is already the dominant
energy decision on this uplink: exactly the paper's thesis.)
"""

import math

import pytest

from repro import (
    CostWindowScheduler,
    DeadlineBatcher,
    EagerScheduler,
    Environment,
    Job,
    ObjectiveWeights,
    OffloadController,
)
from repro.apps import video_highlights_app
from repro.metrics import Table
from repro.serverless.platform import PlatformConfig

from _common import emit

N_JOBS = 8
INPUT_MB = 12.0
SLACK_S = 6 * 3600.0
SEED = 191

STACK = [
    ("interactive", dict(weights="interactive", scheduler="eager", dvfs=False)),
    ("+ ntc weights", dict(weights="ntc", scheduler="eager", dvfs=False)),
    ("+ batching", dict(weights="ntc", scheduler="batch", dvfs=False)),
    ("+ dvfs", dict(weights="ntc", scheduler="batch", dvfs=True)),
    ("+ cost window", dict(weights="ntc", scheduler="costwindow", dvfs=True)),
]


def congestion_price(t: float) -> float:
    """Diurnal congestion: expensive at release time, cheap ~5 h later."""
    return 1.0 + 0.9 * math.cos(2 * math.pi * t / 86_400.0)


def make_scheduler(kind):
    if kind == "eager":
        return EagerScheduler()
    if kind == "batch":
        return DeadlineBatcher(window_s=900.0)
    return CostWindowScheduler(congestion_price, resolution_s=900.0)


def run_config(config):
    env = Environment.build(
        seed=SEED,
        connectivity="3g",
        execution_noise_sigma=0.0,
        platform_config=PlatformConfig(keep_alive_s=240.0),
    )
    weights = (
        ObjectiveWeights.interactive()
        if config["weights"] == "interactive"
        else ObjectiveWeights.non_time_critical()
    )
    controller = OffloadController(
        env,
        video_highlights_app(),
        weights=weights,
        scheduler=make_scheduler(config["scheduler"]),
        dvfs=config["dvfs"],
    )
    controller.profile_offline()
    partition = controller.plan(input_mb=INPUT_MB)
    jobs = [
        Job(controller.app, input_mb=INPUT_MB, released_at=300.0 * i,
            deadline=300.0 * i + SLACK_S)
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    mean_price = sum(
        congestion_price(result.started_at) for result in report.results
    ) / max(report.jobs_completed, 1)
    return partition, report, env, mean_price


def run_f8() -> Table:
    table = Table(
        ["configuration", "n cloud", "energy/job J", "mean resp s",
         "cold %", "price paid", "miss %"],
        title=f"F8: the non-time-critical stack — video highlights, "
              f"{INPUT_MB:.0f} MB on 3G, {SLACK_S / 3600:.0f} h slack",
        precision=2,
    )
    rows = {}
    energies = []
    for name, config in STACK:
        partition, report, env, mean_price = run_config(config)
        energy = report.total_ue_energy_j / N_JOBS
        energies.append(energy)
        rows[name] = dict(
            cold=env.platform.cold_start_fraction(),
            price=mean_price,
            resp=report.mean_response_s,
            energy=energy,
        )
        table.add_row(
            name,
            len(partition.cloud),
            energy,
            report.mean_response_s,
            100 * env.platform.cold_start_fraction(),
            mean_price,
            100 * report.deadline_miss_rate,
        )
        assert report.deadline_miss_rate == 0.0, name
    # Each lever buys its metric.
    assert rows["+ batching"]["cold"] < 0.6 * rows["interactive"]["cold"]
    assert rows["+ dvfs"]["energy"] <= rows["+ batching"]["energy"] + 1e-6
    assert rows["+ cost window"]["price"] < 0.5 * rows["interactive"]["price"]
    # Energy never regresses materially down the ladder (the cost-window
    # rung may shuffle cold-start idle by a fraction of a joule).
    assert all(b <= a * 1.01 for a, b in zip(energies, energies[1:])), energies
    return table


def bench_f8_ntc_stack(benchmark):
    table = benchmark.pedantic(run_f8, rounds=1, iterations=1)
    emit(table)
    # The currency: response time at the bottom of the ladder exceeds the
    # interactive baseline (slack got spent, deliberately).
    responses = table.column("mean resp s")
    assert responses[-1] > responses[0]


if __name__ == "__main__":
    emit(run_f8())
