"""F5 — Edge vs cloud-serverless for non-time-critical jobs.

The paper's central argument quantified, in two parts:

* **F5a (latency adequacy):** the edge node answers faster — no WAN hop,
  no cold starts — so the *tightest feasible deadline* (the maximum
  observed response time) is lower on the edge.  That is the edge's
  entire advantage.
* **F5b (cost):** the edge bills by provisioned hours whether used or
  not, serverless bills per invocation.  Sweeping workload intensity
  shows serverless is far cheaper at the low duty cycles typical of
  non-time-critical, per-user jobs, and only loses once the node is kept
  genuinely busy.

Together: once a job has slack, the edge's latency edge buys nothing and
its infrastructure cost remains — exactly the paper's case for staying
in the cloud.
"""

import pytest

from repro import Environment, Job, OffloadController
from repro.apps import nightly_analytics_app
from repro.baselines import EdgeEnvironment, EdgeJobRunner
from repro.metrics import Table

from _common import emit

INPUT_MB = 6.0
SEED = 88
HORIZON_S = 6 * 3600.0
JOBS_PER_HOUR_SWEEP = [0.5, 2.0, 8.0, 32.0, 128.0]


def make_jobs(app, n_jobs, horizon=HORIZON_S, slack=None):
    spacing = horizon / n_jobs
    slack = slack if slack is not None else horizon
    return [
        Job(app, input_mb=INPUT_MB, released_at=spacing * i,
            deadline=spacing * i + slack)
        for i in range(n_jobs)
    ]


def run_cloud(n_jobs):
    env = Environment.build(seed=SEED, connectivity="4g")
    controller = OffloadController(env, nightly_analytics_app())
    controller.profile_offline()
    controller.plan(input_mb=INPUT_MB)
    report = controller.run_workload(make_jobs(controller.app, n_jobs))
    if env.sim.now < HORIZON_S:
        env.sim.run(until=HORIZON_S)  # run out the billing horizon
    return report, report.total_cloud_cost_usd


def run_edge(n_jobs):
    env = EdgeEnvironment.build(seed=SEED, connectivity="4g")
    runner = EdgeJobRunner(env, nightly_analytics_app())
    report = runner.run_workload(make_jobs(runner.app, n_jobs))
    if env.sim.now < HORIZON_S:
        env.sim.run(until=HORIZON_S)
    billing_end = max(HORIZON_S, env.sim.now)
    return report, env.edge.provisioned_cost(until=billing_end), env


def run_f5a() -> Table:
    table = Table(
        ["system", "mean resp s", "p100 resp s (min feasible deadline)",
         "UE energy/job J"],
        title="F5a: latency adequacy — 12 analytics jobs, 4G access",
        precision=2,
    )
    n = 12
    cloud_report, _ = run_cloud(n)
    edge_report, _cost, _env = run_edge(n)
    for name, report in (("edge node", edge_report), ("cloud serverless", cloud_report)):
        worst = max(r.response_time for r in report.results)
        table.add_row(
            name, report.mean_response_s, worst,
            report.total_ue_energy_j / report.jobs_completed,
        )
    edge_worst = max(r.response_time for r in edge_report.results)
    cloud_worst = max(r.response_time for r in cloud_report.results)
    # The edge's raison d'être: it supports tighter deadlines.
    assert edge_worst < cloud_worst
    return table


def run_f5b() -> Table:
    table = Table(
        ["jobs/hour", "edge $/job", "serverless $/job", "cheaper",
         "edge util %"],
        title=f"F5b: cost per job vs workload intensity "
              f"({HORIZON_S / 3600:.0f} h horizon, loose deadlines)",
        precision=4,
    )
    winners = []
    for rate in JOBS_PER_HOUR_SWEEP:
        n_jobs = max(int(rate * HORIZON_S / 3600.0), 1)
        _cloud_report, cloud_cost = run_cloud(n_jobs)
        _edge_report, edge_cost, edge_env = run_edge(n_jobs)
        edge_per_job = edge_cost / n_jobs
        cloud_per_job = cloud_cost / n_jobs
        winner = "serverless" if cloud_per_job < edge_per_job else "edge"
        winners.append(winner)
        table.add_row(
            rate, edge_per_job, cloud_per_job, winner,
            100 * edge_env.edge.utilisation(),
        )
    # The paper's regime: sparse non-time-critical jobs -> serverless wins.
    assert winners[0] == "serverless"
    assert winners[1] == "serverless"
    # The flip only happens (if at all) once the node is kept busy.
    if "edge" in winners:
        first_edge = winners.index("edge")
        assert all(w == "edge" for w in winners[first_edge:])
    return table


def bench_f5_edge_vs_cloud(benchmark):
    def both():
        return run_f5a(), run_f5b()

    adequacy, cost = benchmark.pedantic(both, rounds=1, iterations=1)
    emit(adequacy)
    emit(cost)

    # Serverless per-job cost is intensity-independent (pay per use);
    # edge per-job cost falls as utilisation grows (amortisation).
    edge_costs = cost.column("edge $/job")
    assert all(a > b for a, b in zip(edge_costs, edge_costs[1:]))


if __name__ == "__main__":
    emit(run_f5a())
    emit(run_f5b())
