"""A10 — Ablation: oracle profiling vs observed-signal demand.

The controller normally cheats twice: :meth:`profile_offline` reads the
app's true demand coefficients from the oracle profiler, and planning
link rates come from the connectivity model itself.  With
``observed_signals=True`` it consumes only what a production platform
exports — measured execution durations (inverted to gigacycles through
the billing-tier duration model) and the monitor's windowed link
goodput — starting from an unprofiled demand model and learning
in-flight.

Expected shape: the oracle mode starts accurate; the observed mode
starts with the unprofiled prior's large demand error and converges as
executions stream in, while completing the same workload.  Both modes
are bit-reproducible.
"""

from __future__ import annotations

from repro.apps import Job, photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.metrics import Table, stable_digest
from repro.monitor import attach_monitor
from repro.telemetry import attach_tracer

from _common import emit, write_bench_summary

SEED = 1010
N_JOBS = 10
INPUT_MB = 3.0
RELEASE_SPACING_S = 60.0
DEADLINE_SLACK_S = 3600.0

MODES = ("oracle", "observed")


def run_mode(mode: str) -> dict:
    """One workload under one demand regime; returns its scorecard."""
    observed = mode == "observed"
    env = Environment.build_custom(
        seed=SEED, uplink_bandwidth=2.0e6, access_latency_s=0.030
    )
    monitor = None
    if observed:
        attach_tracer(env)
        monitor = attach_monitor(env)
    controller = OffloadController(
        env,
        photo_backup_app(),
        adaptive=observed,  # replan as monitored history accumulates
        replan_every=3,
        observed_signals=observed,
        monitor=monitor,
    )
    error_unprofiled = controller.demand.mean_relative_error(INPUT_MB)
    controller.profile_offline()  # no-op in observed mode by contract
    error_at_plan = controller.demand.mean_relative_error(INPUT_MB)
    controller.plan(input_mb=INPUT_MB)
    jobs = [
        Job(
            controller.app,
            input_mb=INPUT_MB,
            released_at=RELEASE_SPACING_S * i,
            deadline=RELEASE_SPACING_S * i + DEADLINE_SLACK_S,
            job_id=7000 + i,
        )
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    return {
        "mode": mode,
        "jobs_completed": report.jobs_completed,
        "failures": len(report.failures),
        "deadline_miss_rate": report.deadline_miss_rate,
        "error_unprofiled": error_unprofiled,
        "error_at_plan": error_at_plan,
        "error_after_run": controller.demand.mean_relative_error(INPUT_MB),
        "cloud_usd": report.total_cloud_cost_usd,
        "ue_energy_j": report.total_ue_energy_j,
        "digest": stable_digest(env.metrics.snapshot()),
    }


def run_a10() -> Table:
    table = Table(
        [
            "mode",
            "completed",
            "miss %",
            "demand err at plan %",
            "demand err after run %",
            "cloud $",
            "energy J",
        ],
        title=(
            f"A10: oracle vs observed-signal demand — {N_JOBS} jobs, "
            f"{INPUT_MB} MB inputs, seed {SEED}"
        ),
        precision=3,
    )
    cells = {mode: run_mode(mode) for mode in MODES}
    for mode in MODES:
        cell = cells[mode]
        table.add_row(
            mode,
            cell["jobs_completed"],
            100.0 * cell["deadline_miss_rate"],
            100.0 * cell["error_at_plan"],
            100.0 * cell["error_after_run"],
            f"{cell['cloud_usd']:.2e}",
            cell["ue_energy_j"],
        )

    oracle, observed = cells["oracle"], cells["observed"]
    # Both regimes must finish the whole (slack-rich) workload.
    assert oracle["jobs_completed"] == observed["jobs_completed"] == N_JOBS
    assert oracle["failures"] == observed["failures"] == 0
    # The oracle profiler starts the run already accurate.
    assert oracle["error_at_plan"] < 0.10, oracle["error_at_plan"]
    # The observed mode plans blind (profile_offline is a no-op)…
    assert observed["error_at_plan"] == observed["error_unprofiled"]
    # …and in-flight measurements must cut the demand error sharply.
    assert observed["error_after_run"] < 0.5 * observed["error_at_plan"], (
        observed["error_at_plan"], observed["error_after_run"],
    )
    # Observed-signal inversion is honest, not magic: it should land in
    # the oracle's neighbourhood without being handed the coefficients.
    assert observed["error_after_run"] < 0.25, observed["error_after_run"]
    # Determinism: the monitored, adaptive mode reruns bit-identically.
    assert run_mode("observed")["digest"] == observed["digest"]

    write_bench_summary(
        "a10_observed_signals",
        {
            "seed": SEED,
            "jobs": N_JOBS,
            "modes": {
                mode: {
                    key: value
                    for key, value in cells[mode].items()
                    if key != "mode"
                }
                for mode in MODES
            },
        },
    )
    return table


def bench_a10_observed_signals(benchmark):
    table = benchmark.pedantic(run_a10, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_a10())
