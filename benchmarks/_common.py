"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure from the evaluation plan
in DESIGN.md.  The output convention: each bench prints its table to
stdout (captured into EXPERIMENTS.md) and asserts the qualitative shape
the experiment is meant to demonstrate, so a regression in any mechanism
fails the harness loudly rather than silently producing a different
conclusion.
"""

from __future__ import annotations

from typing import Optional

from repro.core.controller import Environment
from repro.device.ue import DeviceSpec, UserEquipment
from repro.metrics import MetricRegistry, Table
from repro.network.link import Link, NetworkPath
# Re-exported so every bench module registers itself through the one
# flat import it already has (`from _common import ...`).
from repro.perf.bench import MetricSpec, record_summary, register_bench
from repro.serverless.platform import PlatformConfig, ServerlessPlatform
from repro.sim import Simulator
from repro.sim.rng import SeedSequenceRegistry


def build_env_with_uplink(
    uplink_bps: float,
    seed: int = 0,
    downlink_bps: Optional[float] = None,
    access_latency_s: float = 0.025,
    wan_latency_s: float = 0.040,
    device: Optional[DeviceSpec] = None,
    platform_config: Optional[PlatformConfig] = None,
) -> Environment:
    """An :class:`Environment` with an explicit uplink rate (bytes/s).

    The connectivity presets quantise bandwidth to named technologies;
    the figure sweeps need a continuous axis instead.
    """
    if downlink_bps is None:
        downlink_bps = uplink_bps * 4
    sim = Simulator()
    rng = SeedSequenceRegistry(seed)
    metrics = MetricRegistry()

    def path(rate: float, direction: str) -> NetworkPath:
        access = Link(
            sim,
            bandwidth=rate,
            latency_s=access_latency_s,
            per_request_overhead_bytes=1500.0,
            name=f"sweep.access.{direction}",
            metrics=metrics,
        )
        wan = Link(
            sim,
            bandwidth=rate * 4,
            latency_s=wan_latency_s,
            name=f"sweep.wan.{direction}",
            metrics=metrics,
        )
        return NetworkPath(sim, [access, wan], name=f"sweep.{direction}")

    return Environment(
        sim=sim,
        ue=UserEquipment(sim, device, metrics=metrics),
        platform=ServerlessPlatform(sim, platform_config, metrics=metrics),
        uplink=path(uplink_bps, "up"),
        downlink=path(downlink_bps, "down"),
        rng=rng,
        metrics=metrics,
    )


def emit(table: Table) -> None:
    """Print a benchmark table with a blank-line frame.

    pytest captures this output; ``-s`` (or the EXPERIMENTS.md harness)
    shows it.
    """
    print()
    print(table.render())
    print()


def enable_tracing(env: Environment):
    """Attach a :class:`~repro.telemetry.Tracer` to ``env`` and return it.

    Benchmarks that want phase attribution call this right after building
    the environment (before planning, so the plan span is captured).
    """
    from repro.telemetry import attach_tracer

    return attach_tracer(env)


def emit_phase_attribution(tracer) -> None:
    """Print the per-phase totals of a traced benchmark run."""
    from repro.telemetry import build_report

    print()
    print(build_report(tracer).render())
    print()


def sweep_rows(cell, configs, *, workers=None, cache_dir=None):
    """Run a benchmark's scenario grid through :mod:`repro.sweep`.

    ``cell`` is a top-level function taking one config dict and returning
    a JSON dict; ``configs`` is the grid in presentation order.  Results
    come back in that same order (the sweep itself merges by canonical
    config key, so parallel execution cannot reorder anything).

    Workers default to the ``REPRO_BENCH_WORKERS`` environment variable
    (``1`` = in-process, the deterministic-wall-clock default for CI);
    export e.g. ``REPRO_BENCH_WORKERS=4`` to fan the grid out.
    """
    import os

    from repro.sweep import SweepRunner, SweepSpec

    if workers is None:
        workers = int(os.environ.get("REPRO_BENCH_WORKERS", "1"))
    spec = SweepSpec(scenario=cell, points=list(configs))
    result = SweepRunner(spec, workers=workers, cache_dir=cache_dir).run()
    return result.results_for(configs)


def timed_rows(cases, *, repeats=5, warmup=True):
    """Wall-time a set of benchmark configurations, noise-resistantly.

    ``cases`` is an ordered mapping of ``name -> thunk``.  Each thunk is
    either timed around its full call (monotonic clock) or, when it
    returns a float, that value is taken as the sample — letting a bench
    time only its measured region and exclude setup.

    Rounds are interleaved (case A, case B, ..., repeat) so slow drift in
    the host machine hits every configuration equally, and each case is
    scored by its *minimum* over the repeats — the best observed time is
    the least noise-contaminated estimate of the true cost.  Returns
    ``{name: best_seconds}`` in the input order.

    O2 (kernel throughput) and the fleet benches build on this instead
    of hand-rolling timing loops; O1 interleaves its own rounds because
    its asserts need the per-round samples, not just the minima.
    """
    from time import perf_counter

    cases = dict(cases)
    if warmup:
        for thunk in cases.values():  # JIT caches, allocator, branch
            thunk()
    samples = {name: [] for name in cases}
    for _ in range(repeats):
        for name, thunk in cases.items():
            started = perf_counter()
            result = thunk()
            elapsed = perf_counter() - started
            samples[name].append(
                result if isinstance(result, float) else elapsed
            )
    return {name: min(values) for name, values in samples.items()}


def write_bench_summary(name: str, payload: dict) -> None:
    """Record a bench's summary; write ``BENCH_<name>.json`` when asked.

    Every call stashes the payload in the harness registry (so ``repro
    bench run`` collects results without parsing stdout).  When the
    ``REPRO_BENCH_JSON`` environment variable names a directory (created
    if missing), the payload is additionally dumped there as sorted-key
    JSON — stamped with the machine fingerprint so a committed baseline
    records where its numbers came from; CI uploads the files as build
    artifacts so cross-commit trends can be scraped without parsing
    stdout tables.
    """
    import json
    import os
    from pathlib import Path

    record_summary(name, payload)
    out_dir = os.environ.get("REPRO_BENCH_JSON")
    if not out_dir:
        return
    from repro.perf.bench import machine_fingerprint

    document = {"bench": name, "fingerprint": machine_fingerprint(), **payload}
    target = Path(out_dir)
    target.mkdir(parents=True, exist_ok=True)
    path = target / f"BENCH_{name}.json"
    path.write_text(
        json.dumps(document, sort_keys=True, indent=2, default=str) + "\n"
    )
    print(f"bench summary written to {path}")


MBPS = 1_000_000 / 8  # bytes/second per megabit/second
