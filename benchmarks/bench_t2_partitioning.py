"""T2 — Partitioning quality across applications.

Every partitioner prices the three catalog applications (plus a random
layered DAG) under identical planning contexts; the exact methods must
match exhaustive enumeration and beat the trivial/naive baselines.
"""

import pytest

from repro.apps import (
    layered_random_app,
    ml_training_app,
    nightly_analytics_app,
    photo_backup_app,
)
from repro.baselines import MyopicLatencyPartitioner, RandomPartitioner
from repro.core.partitioning import (
    ExhaustivePartitioner,
    FixedPartitioner,
    GreedyPartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    Partition,
    PartitionContext,
)
from repro.metrics import Table
from repro.sim.rng import RngStream

from _common import emit

INPUT_MB = 4.0
UPLINK_BPS = 1.25e6  # 10 Mbit/s 4G-class uplink


def make_apps():
    return [
        photo_backup_app(),
        nightly_analytics_app(),
        ml_training_app(),
        layered_random_app(4, 3, RngStream(17), name="layered4x3"),
    ]


def make_context(app):
    work = {c.name: c.work_for(INPUT_MB) for c in app.components}
    return PartitionContext(
        app=app,
        input_mb=INPUT_MB,
        work=work,
        uplink_bps=UPLINK_BPS,
        weights=ObjectiveWeights(),
    )


def make_partitioners(app):
    return [
        ("local-only", FixedPartitioner(Partition.local_only(app))),
        ("full-offload", FixedPartitioner(Partition.full_offload(app))),
        ("random", RandomPartitioner(RngStream(3))),
        ("myopic", MyopicLatencyPartitioner()),
        ("greedy", GreedyPartitioner()),
        ("mincut", MinCutPartitioner()),
        ("exhaustive", ExhaustivePartitioner()),
    ]


def run_t2() -> Table:
    table = Table(
        ["app", "partitioner", "objective", "makespan s", "energy J",
         "cost $", "n cloud"],
        title=f"T2: partition quality at {UPLINK_BPS * 8 / 1e6:.0f} Mbit/s "
              f"uplink, {INPUT_MB:.0f} MB inputs",
        precision=3,
    )
    for app in make_apps():
        ctx = make_context(app)
        results = {}
        for name, partitioner in make_partitioners(app):
            evaluation = partitioner.evaluate(ctx)
            results[name] = evaluation
            table.add_row(
                app.name, name, evaluation.objective, evaluation.makespan_s,
                evaluation.ue_energy_j, evaluation.cloud_cost_usd,
                len(evaluation.partition.cloud),
            )
        # Shape assertions per app.
        optimal = results["exhaustive"].objective
        assert results["mincut"].objective == pytest.approx(optimal, rel=1e-7)
        assert results["greedy"].objective <= optimal * 1.05
        assert optimal <= results["local-only"].objective + 1e-9
        assert optimal <= results["full-offload"].objective + 1e-9
        assert optimal <= results["random"].objective + 1e-9
        assert optimal <= results["myopic"].objective + 1e-9
    return table


def bench_t2_partitioning(benchmark):
    table = benchmark.pedantic(run_t2, rounds=1, iterations=1)
    emit(table)
    # Across all apps the optimum strictly beats the random baseline.
    objectives = {}
    for row in table.rows:
        objectives.setdefault(row[0], {})[row[1]] = row[2]
    improvements = [
        row["random"] / row["exhaustive"] for row in objectives.values()
    ]
    assert max(improvements) > 1.05  # random loses clearly somewhere


if __name__ == "__main__":
    emit(run_t2())
