"""O2 — Kernel throughput: the committed baseline every PR is gated on.

Four microbenches isolate the kernel's hot paths plus one end-to-end
cell, so a regression in any of them is attributable:

* **pure_events** — callback-chained immediate events: the zero-delay
  fast lane with no generator machinery at all (events/second);
* **spawn_join** — process bootstrap, zero-delay timeout, join: the
  spawn-heavy pattern the serverless substrate leans on;
* **resource_ops** — contended acquire/hold/release cycles through
  :class:`~repro.sim.resources.Resource` (16 workers on 4 slots);
* **link_transfers** — full :class:`~repro.network.link.Link` transfers
  on a constant-bandwidth link (channel grant + serialisation timeout);
* **f6_end_to_end** — the F6a 80-job controller workload, the
  wall-clock number the ≥1.15x acceptance gate tracks.

``REPRO_BENCH_SHORT=1`` shrinks every op count ~8x for CI smoke runs.
The emitted ``BENCH_O2.json`` carries the frozen pre-PR kernel numbers
(measured on the machine that landed the fast lane) purely as the
speedup provenance; the CI regression gate instead compares a fresh run
against the *committed* ``benchmarks/BENCH_O2.json`` via
``tools/check_bench_o2.py`` (>20% events/sec drop fails).

Wall-clock columns are non-deterministic (like O1 and F6); every event
count in the table regenerates bit-identically.
"""

from __future__ import annotations

import os
from time import perf_counter

from repro.metrics import Table
from repro.network.link import Link
from repro.sim import Simulator
from repro.sim.events import Event
from repro.sim.resources import Resource

from _common import (
    MetricSpec,
    emit,
    register_bench,
    timed_rows,
    write_bench_summary,
)

SHORT = os.environ.get("REPRO_BENCH_SHORT", "") not in ("", "0")
SCALE = 8 if SHORT else 1
N_PURE = 400_000 // SCALE
N_SPAWN = 80_000 // SCALE
N_RESOURCE = 64_000 // SCALE
N_LINK = 24_000 // SCALE
N_F6_JOBS = 80 // (4 if SHORT else 1)
REPEATS = 3 if SHORT else 5

#: Pre-PR kernel throughput (heap-only dispatch, allocating hot path),
#: measured with this same suite's op mix on the machine that landed the
#: fast-lane kernel.  Kept for provenance: the speedup columns below are
#: only meaningful on comparable hardware; cross-commit gating uses the
#: committed BENCH_O2.json instead.
PRE_PR_BASELINE = {
    "pure_events_per_s": 1_145_585.0,
    "spawn_join_per_s": 160_950.0,
    "resource_ops_per_s": 231_403.0,
    "link_transfers_per_s": 67_955.0,
    "f6_wall_s": 0.0718,
}


def _pure_events(n: int) -> float:
    """Chain ``n`` immediate succeed-dispatched events, no processes."""
    sim = Simulator()
    remaining = [n]

    def relight(_event: Event) -> None:
        if remaining[0]:
            remaining[0] -= 1
            nxt = Event(sim)
            nxt.callbacks.append(relight)
            nxt.succeed(None)

    first = Event(sim)
    first.callbacks.append(relight)
    first.succeed(None)
    started = perf_counter()
    sim.run()
    elapsed = perf_counter() - started
    assert sim.events_processed == n + 1, sim.events_processed
    return elapsed


def _spawn_join(n: int) -> float:
    """A parent spawning and joining ``n`` zero-delay children."""
    sim = Simulator()

    def child(sim):
        yield sim.timeout(0)
        return 1

    def parent(sim):
        for _ in range(n):
            yield sim.spawn(child(sim))

    root = sim.spawn(parent(sim))
    started = perf_counter()
    sim.run(until=root)
    return perf_counter() - started


def _resource_ops(n: int, capacity: int = 4, workers: int = 16) -> float:
    """Contended request/hold/release cycles on a counted resource."""
    sim = Simulator()
    resource = Resource(sim, capacity=capacity)
    per_worker = n // workers

    def worker(sim):
        for _ in range(per_worker):
            request = resource.request()
            yield request
            yield sim.timeout(0.001)
            resource.release(request)

    for _ in range(workers):
        sim.spawn(worker(sim))
    started = perf_counter()
    sim.run()
    return perf_counter() - started


def _link_transfers(n: int) -> float:
    """Back-to-back transfers over a constant-bandwidth two-channel link."""
    sim = Simulator()
    link = Link(sim, bandwidth=1e9, latency_s=0.001, channels=2)

    def driver(sim):
        for _ in range(n):
            yield link.transfer(1000.0)

    root = sim.spawn(driver(sim))
    started = perf_counter()
    sim.run(until=root)
    return perf_counter() - started


def _f6_end_to_end(n_jobs: int):
    """The F6a jobs cell: full controller workload, measured wall."""
    from repro import Environment, Job, OffloadController
    from repro.apps import photo_backup_app

    env = Environment.build(seed=99, connectivity="4g")
    controller = OffloadController(env, photo_backup_app())
    controller.profile_offline()
    controller.plan(input_mb=3.0)
    jobs = [
        Job(controller.app, input_mb=3.0, released_at=5.0 * i,
            deadline=5.0 * i + 36_000.0)
        for i in range(n_jobs)
    ]
    started = perf_counter()
    report = controller.run_workload(jobs)
    elapsed = perf_counter() - started
    assert report.jobs_completed == n_jobs
    return elapsed, env.sim.events_processed


OPS = {
    "pure_events": N_PURE,
    "spawn_join": N_SPAWN,
    "resource_ops": N_RESOURCE,
    "link_transfers": N_LINK,
    "f6_end_to_end": N_F6_JOBS,
}


def measure() -> dict:
    """Min-of-REPEATS seconds per microbench, rounds interleaved."""
    f6_events = []

    def f6_thunk() -> float:
        elapsed, events = _f6_end_to_end(N_F6_JOBS)
        f6_events.append(events)
        return elapsed

    best = timed_rows(
        {
            "pure_events": lambda: _pure_events(N_PURE),
            "spawn_join": lambda: _spawn_join(N_SPAWN),
            "resource_ops": lambda: _resource_ops(N_RESOURCE),
            "link_transfers": lambda: _link_transfers(N_LINK),
            "f6_end_to_end": f6_thunk,
        },
        repeats=REPEATS,
    )
    # Determinism shape: the end-to-end cell dispatches the same event
    # count on every repeat (the wall column is the only noise).
    assert len(set(f6_events)) == 1, f6_events
    best["_f6_sim_events"] = float(f6_events[0])
    return best


@register_bench(
    "O2",
    metrics=(
        # The CI gate deliberately compares short-mode fresh numbers
        # against the committed full-mode baseline (same_mode False):
        # short mode shrinks op counts, not per-op cost, so events/sec
        # stays comparable.
        MetricSpec("events_per_s_pure", kind="ratio", direction="higher",
                   threshold=0.20),
    ),
    deterministic=("mode", "short_mode", "repeats", "ops", "f6_jobs",
                   "f6_sim_events"),
    primary="events_per_s_pure",
)
def run_o2() -> Table:
    best = measure()
    f6_sim_events = int(best.pop("_f6_sim_events"))
    table = Table(
        ["microbench", "ops", "wall s (min of N)", "ops/s",
         "speedup vs pre-PR kernel"],
        title=f"O2: kernel throughput — interleaved rounds, min of {REPEATS}"
              f"{' (short mode)' if SHORT else ''}",
        precision=3,
    )
    ops_per_s = {}
    for name, n_ops in OPS.items():
        seconds = best[name]
        ops_per_s[name] = n_ops / seconds
        if name == "f6_end_to_end":
            # The baseline is a full 80-job wall time; compare walls, and
            # only when this run used the full job count.
            speedup = (
                PRE_PR_BASELINE["f6_wall_s"] / seconds
                if n_ops == 80 else float("nan")
            )
        else:
            speedup = ops_per_s[name] / PRE_PR_BASELINE[f"{name}_per_s"]
        table.add_row(name, n_ops, seconds, ops_per_s[name], speedup)

    # Machine-independent shape: every op class pays more per op as it
    # stacks more kernel work (event < spawned process < link transfer).
    assert ops_per_s["pure_events"] > ops_per_s["spawn_join"], ops_per_s
    assert ops_per_s["spawn_join"] > ops_per_s["link_transfers"], ops_per_s
    assert ops_per_s["resource_ops"] > ops_per_s["link_transfers"], ops_per_s

    write_bench_summary(
        "O2",
        {
            "mode": "short" if SHORT else "full",
            "short_mode": SHORT,
            "repeats": REPEATS,
            "ops": dict(OPS),
            "wall_s": {name: best[name] for name in OPS},
            "ops_per_s": ops_per_s,
            "events_per_s_pure": ops_per_s["pure_events"],
            "f6_jobs": N_F6_JOBS,
            "f6_wall_s": best["f6_end_to_end"],
            "f6_sim_events": f6_sim_events,
            "baseline_pre_pr": PRE_PR_BASELINE,
        },
    )
    return table


def bench_o2_kernel(benchmark):
    table = benchmark.pedantic(run_o2, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_o2())
