"""A4 — Ablation: cold-start mitigation strategies.

Sparse traffic (mean gap 400 s, keep-alive 120 s) cold-starts nearly
every request.  Four mitigations are compared on identical arrivals:

* **baseline** — nothing;
* **keep-alive x10** — platform holds sandboxes longer (free on real
  platforms up to a point, modelled as free here);
* **batching** — dispatches quantised to 1 h boundaries and sent
  *sequentially* within a batch so every member after the first reuses
  the warm sandbox (costs response delay, not money);
* **prewarm 1** — one provisioned sandbox (costs GB-seconds around the
  clock, eliminates cold starts entirely).
"""

import math

import pytest

from repro.metrics import Table
from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    PlatformConfig,
    ServerlessPlatform,
)
from repro.sim import Simulator
from repro.sim.rng import RngStream
from repro.traces import PoissonArrivals

from _common import emit

N_REQUESTS = 150
MEAN_GAP_S = 400.0
WORK_GCYCLES = 2.4
SEED = 121
BATCH_WINDOW_S = 3600.0


def arrival_times():
    process = PoissonArrivals(1.0 / MEAN_GAP_S, RngStream(SEED))
    times = []
    t = 0.0
    for _ in range(N_REQUESTS):
        t = process.next_after(t)
        times.append(t)
    return times


def run_strategy(strategy):
    keep_alive = 1200.0 if strategy == "keep-alive x10" else 120.0
    sim = Simulator()
    platform = ServerlessPlatform(
        sim,
        PlatformConfig(
            keep_alive_s=keep_alive,
            cold_start_base_s=0.4,
            cold_start_per_package_mb_s=0.004,
        ),
    )
    platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=50))

    times = arrival_times()
    if strategy == "batching":
        dispatch_times = [
            math.floor(t / BATCH_WINDOW_S + 1.0) * BATCH_WINDOW_S for t in times
        ]
    else:
        dispatch_times = times

    sequential = strategy == "batching"

    def driver(sim):
        if strategy == "prewarm 1":
            yield platform.prewarm("f", 1)
        pending = []
        for release, dispatch in zip(times, dispatch_times):
            yield sim.timeout(max(dispatch - sim.now, 0.0))
            invocation = platform.invoke(InvocationRequest("f", WORK_GCYCLES))
            if sequential:
                # A batching client drains its batch one by one, so each
                # member after the first lands on the warm sandbox.
                yield invocation
            else:
                pending.append(invocation)
        if pending:
            yield sim.all_of(pending)

    sim.run(until=sim.spawn(driver(sim)))
    latencies = sorted(
        record.finished_at - release
        for record, release in zip(platform.invocations, times)
    )
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[int(len(latencies) * 0.99) - 1]
    return {
        "cold": platform.cold_start_fraction(),
        "p50": p50,
        "p99": p99,
        "invocation $": sum(i.cost for i in platform.invocations),
        "provisioned $": platform.provisioned_cost(),
    }


STRATEGIES = ["baseline", "keep-alive x10", "batching", "prewarm 1"]


def run_a4() -> Table:
    table = Table(
        ["strategy", "cold %", "p50 resp s", "p99 resp s",
         "invocation $", "provisioned $", "total $"],
        title=f"A4: cold-start mitigation — {N_REQUESTS} requests, "
              f"mean gap {MEAN_GAP_S:.0f} s, keep-alive 120 s",
        precision=3,
    )
    results = {}
    for strategy in STRATEGIES:
        outcome = run_strategy(strategy)
        results[strategy] = outcome
        table.add_row(
            strategy, 100 * outcome["cold"], outcome["p50"], outcome["p99"],
            outcome["invocation $"], outcome["provisioned $"],
            outcome["invocation $"] + outcome["provisioned $"],
        )
    # Shapes: every mitigation beats the baseline on cold starts.
    for strategy in STRATEGIES[1:]:
        assert results[strategy]["cold"] < results["baseline"]["cold"]
    # Prewarming eliminates cold starts but is the only one paying
    # provisioned dollars.
    assert results["prewarm 1"]["cold"] < 0.03
    assert results["prewarm 1"]["provisioned $"] > 0
    assert all(results[s]["provisioned $"] == 0 for s in STRATEGIES[:3])
    # Batching pays in response time instead.
    assert results["batching"]["p50"] > 10 * results["baseline"]["p50"]
    return table


def bench_a4_coldstart_mitigation(benchmark):
    table = benchmark.pedantic(run_a4, rounds=1, iterations=1)
    emit(table)
    totals = {row[0]: row[6] for row in table.rows}
    # At this sparsity the provisioned pool costs more than the entire
    # invocation bill — the economics the batcher avoids.
    assert totals["prewarm 1"] > totals["batching"]


if __name__ == "__main__":
    emit(run_a4())
