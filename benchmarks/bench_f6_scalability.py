"""F6 — Scalability of the controller and partitioners.

Two axes:

* **jobs** — wall-clock cost of simulating N concurrent jobs through the
  full controller (the discrete-event kernel must stay near-linear);
* **components** — planning time of the exact partitioners as the graph
  grows (min-cut must stay polynomial where exhaustive explodes), with
  the greedy gap measured where exhaustive is still feasible.
"""

import time

import pytest

from repro import Environment, Job, OffloadController
from repro.apps import linear_pipeline_app, photo_backup_app
from repro.core.partitioning import (
    ExhaustivePartitioner,
    GreedyPartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    PartitionContext,
)
from repro.metrics import Table
from repro.sim.rng import RngStream

from _common import emit, sweep_rows

JOB_COUNTS = [5, 20, 80]
COMPONENT_COUNTS = [6, 12, 24, 48, 96]
SEED = 99


def jobs_cell(config):
    """Sweep cell: simulate one job-count through the full controller."""
    n_jobs = config["jobs"]
    env = Environment.build(seed=SEED, connectivity="4g")
    controller = OffloadController(env, photo_backup_app())
    controller.profile_offline()
    controller.plan(input_mb=3.0)
    jobs = [
        Job(controller.app, input_mb=3.0, released_at=5.0 * i,
            deadline=5.0 * i + 36_000.0)
        for i in range(n_jobs)
    ]
    started = time.perf_counter()
    report = controller.run_workload(jobs)
    wall_ms = (time.perf_counter() - started) * 1000
    return {
        "sim_events": env.sim.events_processed,
        "wall_ms": wall_ms,
        "completed": report.jobs_completed,
        "all_met": report.deadline_miss_rate == 0.0,
    }


def run_jobs_axis() -> Table:
    table = Table(
        ["jobs", "sim events", "wall ms", "wall ms/job", "all met"],
        title="F6a: controller cost vs concurrent jobs (photo backup)",
        precision=2,
    )
    per_job = []
    configs = [{"jobs": n} for n in JOB_COUNTS]
    for n_jobs, cell in zip(JOB_COUNTS, sweep_rows(jobs_cell, configs)):
        per_job.append(cell["wall_ms"] / n_jobs)
        table.add_row(
            n_jobs, cell["sim_events"], cell["wall_ms"],
            cell["wall_ms"] / n_jobs, cell["all_met"],
        )
        assert cell["completed"] == n_jobs
    # Near-linear: per-job cost grows sublinearly with the job count
    # (16x more jobs must not cost more than ~4x more per job).
    assert per_job[-1] < per_job[0] * 4.0, per_job
    return table


def _pipeline_app(n):
    """The size-``n`` app of the seeded generator sequence.

    The generator sequence draws from one stream in COMPONENT_COUNTS
    order; replaying the prefix keeps every cell's app identical to the
    sequential harness no matter which worker builds it.
    """
    rng = RngStream(SEED)
    for size in COMPONENT_COUNTS:
        app = linear_pipeline_app(size, rng)
        if size == n:
            return app
    raise ValueError(f"{n} is not in COMPONENT_COUNTS")


def components_cell(config):
    """Sweep cell: time every partitioner on one graph size."""
    n = config["components"]
    app = _pipeline_app(n)
    work = {c.name: c.work_for(3.0) for c in app.components}
    ctx = PartitionContext(
        app=app, input_mb=3.0, work=work, uplink_bps=1.25e6,
        weights=ObjectiveWeights(),
    )

    def timed(partitioner):
        started = time.perf_counter()
        partition = partitioner.partition(ctx)
        elapsed_ms = (time.perf_counter() - started) * 1000
        from repro.core.partitioning import evaluate_partition

        return elapsed_ms, evaluate_partition(ctx, partition).objective

    mincut_ms, mincut_obj = timed(MinCutPartitioner())
    greedy_ms, greedy_obj = timed(GreedyPartitioner())
    if n <= 16:
        exhaustive_ms, exhaustive_obj = timed(ExhaustivePartitioner())
    else:
        exhaustive_ms = exhaustive_obj = None
    return {
        "mincut_ms": mincut_ms, "mincut_obj": mincut_obj,
        "greedy_ms": greedy_ms, "greedy_obj": greedy_obj,
        "exhaustive_ms": exhaustive_ms, "exhaustive_obj": exhaustive_obj,
    }


def run_components_axis() -> Table:
    table = Table(
        ["components", "mincut ms", "greedy ms", "exhaustive ms",
         "greedy gap %"],
        title="F6b: planning time vs graph size (linear pipelines)",
        precision=2,
    )
    mincut_times = []
    configs = [{"components": n} for n in COMPONENT_COUNTS]
    for n, cell in zip(COMPONENT_COUNTS, sweep_rows(components_cell, configs)):
        mincut_times.append(cell["mincut_ms"])
        if cell["exhaustive_obj"] is not None:
            assert cell["mincut_obj"] == pytest.approx(
                cell["exhaustive_obj"], rel=1e-7
            )
        gap = 100 * (cell["greedy_obj"] / cell["mincut_obj"] - 1)
        table.add_row(
            n, cell["mincut_ms"], cell["greedy_ms"], cell["exhaustive_ms"],
            gap,
        )
        assert cell["greedy_obj"] >= cell["mincut_obj"] - 1e-9  # the optimum
    # Min-cut stays fast even at 96 components.
    assert mincut_times[-1] < 2000.0, mincut_times
    return table


def bench_f6_scalability(benchmark):
    def both():
        return run_jobs_axis(), run_components_axis()

    jobs_table, components_table = benchmark.pedantic(both, rounds=1, iterations=1)
    emit(jobs_table)
    emit(components_table)

    gaps = components_table.column("greedy gap %")
    assert max(gaps) < 10.0  # greedy stays near-optimal as graphs grow


if __name__ == "__main__":
    emit(run_jobs_axis())
    emit(run_components_axis())
