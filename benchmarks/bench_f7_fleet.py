"""F7 — Fleet density economics.

A fleet of devices runs the same nightly-analytics job spread over a
fixed window, all sharing one set of serverless functions.  Expected
shape: as the fleet grows, each user's invocation keeps the sandboxes
warm for the next user — the cold-start fraction collapses *without any
provisioning* — while the per-job cost stays flat (pay-per-use) and
deadline safety is unaffected.  This is the fleet-scale version of the
paper's serverless argument.
"""

import pytest

from repro import Job
from repro.apps import nightly_analytics_app
from repro.fleet import FleetController, FleetEnvironment
from repro.metrics import Table
from repro.serverless.platform import PlatformConfig

from _common import emit, sweep_rows

FLEET_SIZES = [2, 8, 32, 96]
WINDOW_S = 2 * 3600.0
INPUT_MB = 4.0
SLACK_S = 3600.0
SEED = 141


def run_fleet(n_devices):
    env = FleetEnvironment.build(
        n_devices=n_devices,
        seed=SEED,
        connectivity=["4g", "wifi"],
        platform_config=PlatformConfig(keep_alive_s=300.0),
    )
    fleet = FleetController(env, nightly_analytics_app())
    fleet.profile_offline()
    fleet.plan(input_mb=INPUT_MB)
    jobs = {
        index: [
            Job(
                fleet.app,
                input_mb=INPUT_MB,
                released_at=WINDOW_S * index / n_devices,
                deadline=WINDOW_S * index / n_devices + SLACK_S,
            )
        ]
        for index in range(n_devices)
    }
    report = fleet.run(jobs)
    return report, env


def fleet_cell(config):
    """Sweep cell: one fleet size, reported as a JSON row."""
    report, env = run_fleet(config["devices"])
    return {
        "cold_fraction": env.platform.cold_start_fraction(),
        "jobs_completed": report.jobs_completed,
        "per_job_usd": report.total_cloud_cost_usd / report.jobs_completed,
        "mean_response_s": report.mean_response_s,
        "miss_rate": report.deadline_miss_rate,
        "platform_usd": env.platform.total_cost,
    }


def run_f7() -> Table:
    table = Table(
        ["devices", "cold %", "$/job", "mean resp s", "miss %",
         "platform $ total"],
        title=f"F7: fleet density — one analytics job per device over "
              f"{WINDOW_S / 3600:.0f} h, shared functions",
        precision=3,
    )
    cold_curve = []
    per_job_costs = []
    configs = [{"devices": n} for n in FLEET_SIZES]
    for n_devices, cell in zip(FLEET_SIZES, sweep_rows(fleet_cell, configs)):
        cold = cell["cold_fraction"]
        cold_curve.append(cold)
        per_job_costs.append(cell["per_job_usd"])
        table.add_row(
            n_devices, 100 * cold, cell["per_job_usd"],
            cell["mean_response_s"], 100 * cell["miss_rate"],
            cell["platform_usd"],
        )
        assert cell["jobs_completed"] == n_devices
        assert cell["miss_rate"] == 0.0
    # Density melts cold starts away without provisioning anything.
    assert all(a >= b - 0.02 for a, b in zip(cold_curve, cold_curve[1:]))
    assert cold_curve[-1] < 0.25 * cold_curve[0]
    # Pay-per-use: per-job cost is flat across two orders of magnitude.
    assert max(per_job_costs) < 1.3 * min(per_job_costs)
    return table


def figure_f7(table) -> str:
    from repro.metrics import ascii_bars

    return ascii_bars(
        [f"{int(row[0])} devices" for row in table.rows],
        [row[1] for row in table.rows],
        title="cold-start % by fleet size (fixed per-device workload)",
        unit="%",
    )


def bench_f7_fleet(benchmark):
    table = benchmark.pedantic(run_f7, rounds=1, iterations=1)
    emit(table)
    print(figure_f7(table))
    totals = table.column("platform $ total")
    # The aggregate bill scales linearly with the fleet (no step costs).
    assert totals[-1] > 10 * totals[0]


if __name__ == "__main__":
    table = run_f7()
    emit(table)
    print(figure_f7(table))
