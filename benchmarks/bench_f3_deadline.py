"""F3 — Deadline-miss rate vs slack (is the batcher safe?).

Sweeps the slack factor (deadline = release + factor x service-time
estimate) and measures miss rate and cost for the immediate dispatcher,
EDF, and the deadline batcher.  Expected shape: every policy misses when
slack < 1x service time (physically impossible deadlines); the batcher
holds zero misses from moderate slack on while cutting cold starts, i.e.
deferral never costs deadline safety.
"""

import pytest

from repro import (
    DeadlineBatcher,
    EagerScheduler,
    Environment,
    Job,
    OffloadController,
    photo_backup_app,
)
from repro.core.scheduler import EdfScheduler
from repro.metrics import Table
from repro.serverless.platform import PlatformConfig

from _common import emit

SLACK_FACTORS = [0.5, 1.0, 2.0, 5.0, 20.0, 100.0]
N_JOBS = 10
INPUT_MB = 4.0
SEED = 55
SERVICE_ESTIMATE_S = 25.0  # rough end-to-end time of one job on 4G


def run_policy(scheduler_factory, slack_factor):
    env = Environment.build(
        seed=SEED,
        connectivity="4g",
        platform_config=PlatformConfig(keep_alive_s=300.0),
    )
    controller = OffloadController(
        env, photo_backup_app(), scheduler=scheduler_factory()
    )
    controller.profile_offline()
    controller.plan(input_mb=INPUT_MB)
    slack = slack_factor * SERVICE_ESTIMATE_S
    jobs = [
        Job(controller.app, input_mb=INPUT_MB, released_at=40.0 * i,
            deadline=40.0 * i + slack)
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    return report, env


def run_f3() -> Table:
    schedulers = [
        ("eager", EagerScheduler),
        ("edf", EdfScheduler),
        ("batcher-5min", lambda: DeadlineBatcher(window_s=300.0)),
    ]
    table = Table(
        ["slack factor", "scheduler", "miss %", "mean resp s",
         "cloud $", "cold %"],
        title=f"F3: deadline misses vs slack — {N_JOBS} photo-backup jobs, "
              f"service ≈ {SERVICE_ESTIMATE_S:.0f} s",
        precision=2,
    )
    miss_curves = {name: [] for name, _ in schedulers}
    for factor in SLACK_FACTORS:
        for name, factory in schedulers:
            report, env = run_policy(factory, factor)
            miss = report.deadline_miss_rate
            miss_curves[name].append(miss)
            table.add_row(
                factor, name, 100 * miss, report.mean_response_s,
                report.total_cloud_cost_usd,
                100 * env.platform.cold_start_fraction(),
            )
    for name, curve in miss_curves.items():
        # Misses are (weakly) monotone decreasing in slack.
        assert all(a >= b - 1e-9 for a, b in zip(curve, curve[1:])), (name, curve)
        # Impossible deadlines are missed; generous ones are met.
        assert curve[0] > 0.5, (name, curve)
        assert curve[-1] == 0.0, (name, curve)
    return table


def bench_f3_deadline(benchmark):
    table = benchmark.pedantic(run_f3, rounds=1, iterations=1)
    emit(table)

    # At generous slack the batcher must not miss, despite deferring.
    rows = [r for r in table.rows if r[0] == SLACK_FACTORS[-1]]
    by_name = {r[1]: r for r in rows}
    assert by_name["batcher-5min"][2] == 0.0
    # And deferral visibly raises response time (that is the trade).
    assert by_name["batcher-5min"][3] > by_name["eager"][3]


if __name__ == "__main__":
    emit(run_f3())
