"""T4 — CI/CD pipeline overhead and the canary regression gate.

Two questions:

1. How much pipeline time do the offloading stages (profile, partition,
   allocate, deploy-canary, canary) add on top of a conventional
   build+test pipeline?
2. Does the canary gate actually stop a demand regression from reaching
   production?
"""

from dataclasses import replace

import pytest

from repro import Environment
from repro.apps import ml_training_app, nightly_analytics_app, photo_backup_app
from repro.cicd import SourceRepository
from repro.core.pipeline import OffloadPipeline, PipelineConfig
from repro.metrics import Table

from _common import emit

APPS = [photo_backup_app, nightly_analytics_app, ml_training_app]
SEED = 9


def run_pipeline(app_factory, offload_enabled):
    env = Environment.build(seed=SEED, connectivity="broadband")
    app = app_factory()
    repo = SourceRepository(app.name, app)
    pipeline = OffloadPipeline(
        env,
        repo,
        config=PipelineConfig(
            canary_jobs=3, offload_stages_enabled=offload_enabled
        ),
    )
    return pipeline, pipeline.run_to_completion()


def run_t4_overhead() -> Table:
    table = Table(
        ["app", "mode", "total s", "build s", "test s", "profile s",
         "canary s", "deploy s", "promoted"],
        title="T4a: pipeline duration with and without offload stages",
        precision=1,
    )
    for app_factory in APPS:
        for mode, enabled in (("conventional", False), ("offload", True)):
            _pipeline, run = run_pipeline(app_factory, enabled)

            def stage_s(name):
                try:
                    return run.stage(name).duration_s
                except KeyError:
                    return None

            table.add_row(
                run.stages[0].detail if False else app_factory().name,
                mode, run.total_duration_s,
                stage_s("build"), stage_s("test"), stage_s("profile"),
                stage_s("canary"), stage_s("deploy-canary"), run.promoted,
            )
            assert run.promoted
    return table


def run_t4_gate() -> Table:
    table = Table(
        ["commit", "Δ train demand", "canary resp s", "canary $/job",
         "outcome"],
        title="T4b: canary gate vs an injected demand regression (ml_training)",
        precision=2,
    )
    env = Environment.build(seed=SEED + 1, connectivity="broadband")
    app = ml_training_app()
    repo = SourceRepository(app.name, app)
    pipeline = OffloadPipeline(
        env, repo,
        config=PipelineConfig(canary_jobs=3, regression_threshold=0.30),
    )
    baseline = pipeline.run_to_completion()
    table.add_row("v1 (baseline)", "-", baseline.canary_mean_response_s,
                  baseline.canary_mean_cost_usd,
                  "promoted" if baseline.promoted else "abandoned")

    train = app.component("train")
    for label, factor in (("v2 (+500% train)", 6.0), ("v3 (-10% train)", 0.9)):
        changed = app.with_component(
            replace(train, work_gcycles=train.work_gcycles * factor,
                    work_gcycles_per_mb=train.work_gcycles_per_mb * factor)
        )
        repo.commit(changed, label)
        run = pipeline.run_to_completion()
        table.add_row(label, f"{factor:+.1f}x", run.canary_mean_response_s,
                      run.canary_mean_cost_usd,
                      "promoted" if run.promoted else "abandoned")
        if factor > 1.5:
            assert not run.promoted, "regression must be caught"
        else:
            assert run.promoted, "improvement must pass the gate"
    assert baseline.promoted
    return table


def bench_t4_cicd(benchmark):
    def both():
        return run_t4_overhead(), run_t4_gate()

    overhead, gate = benchmark.pedantic(both, rounds=1, iterations=1)
    emit(overhead)
    emit(gate)

    # The offload stages cost real time but stay within an order of
    # magnitude of the conventional pipeline for every app.
    totals = {}
    for row in overhead.rows:
        totals.setdefault(row[0], {})[row[1]] = row[2]
    for app_name, modes in totals.items():
        assert modes["offload"] < 20 * modes["conventional"], app_name


if __name__ == "__main__":
    emit(run_t4_overhead())
    emit(run_t4_gate())
