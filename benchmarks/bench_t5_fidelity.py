"""T5 — Planning fidelity: predicted vs measured.

Every decision in the framework rests on the planning model
(`evaluate_partition`): if its predictions diverge from what the
simulated execution actually does, the partitions, allocations, and
deadline math are built on sand.  This experiment runs each catalog
application end to end and compares the *predicted* makespan, UE energy,
and cloud cost of the chosen plan against the measured outcome.

Expected shape: predictions land within tight bounds (the documented
gaps are cold starts — deliberately excluded from the evaluation model
and handled by the scheduler's cold-start allowance — execution noise,
and storage/queueing effects the planner intentionally ignores).
"""

import pytest

from repro import Environment, Job, OffloadController
from repro.apps.catalog import CATALOG
from repro.core.partitioning import evaluate_partition
from repro.metrics import Table

from _common import emit

INPUT_MB = 5.0
SEED = 201


def run_app(name, factory):
    env = Environment.build(seed=SEED, execution_noise_sigma=0.0)
    controller = OffloadController(env, factory())
    controller.profile_offline(noise_sigma=0.0)
    controller.plan(input_mb=INPUT_MB)
    prediction = evaluate_partition(
        controller.build_context(INPUT_MB), controller.partition
    )
    # Warm the platform so the measured run matches the warm-start model.
    warmup = Job(controller.app, input_mb=INPUT_MB)
    controller.run_workload([warmup])
    measured = controller.run_workload(
        [Job(controller.app, input_mb=INPUT_MB)]
    ).results[0]
    return prediction, measured


def run_t5() -> Table:
    table = Table(
        ["app", "metric", "predicted", "measured", "error %"],
        title=f"T5: planning fidelity — warm-start jobs at {INPUT_MB:.0f} MB, "
              "noise disabled",
        precision=3,
    )
    worst = 0.0
    for name, factory in sorted(CATALOG.items()):
        prediction, measured = run_app(name, factory)
        rows = [
            ("makespan s", prediction.makespan_s, measured.makespan),
            ("UE energy J", prediction.ue_energy_j, measured.ue_energy_j),
            ("cloud $", prediction.cloud_cost_usd, measured.cloud_cost_usd),
        ]
        for metric, predicted, actual in rows:
            if actual > 0:
                error = 100 * (predicted - actual) / actual
            else:
                error = 0.0 if predicted == 0 else 100.0
            worst = max(worst, abs(error))
            table.add_row(name, metric, predicted, actual, error)
            # The planner must be faithful on its own terms.
            assert abs(error) < 6.0, (name, metric, error)
    return table


def bench_t5_fidelity(benchmark):
    table = benchmark.pedantic(run_t5, rounds=1, iterations=1)
    emit(table)
    errors = [abs(e) for e in table.column("error %")]
    assert sum(errors) / len(errors) < 3.0  # mean error under 3%


if __name__ == "__main__":
    emit(run_t5())
