"""F2 — Cold-start impact vs arrival rate and keep-alive.

Drives a single serverless function with Poisson arrivals across four
orders of magnitude of rate, at two keep-alive settings.  Expected
shape: at inter-arrival times far above the keep-alive every request
cold-starts and p99 latency sits on the cold-start cliff; as the rate
rises past 1/keep-alive the warm pool absorbs the traffic and the cold
fraction collapses.
"""

import pytest

from repro.metrics import Table
from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    PlatformConfig,
    ServerlessPlatform,
)
from repro.sim import Simulator
from repro.sim.rng import RngStream
from repro.traces import PoissonArrivals

from _common import emit

RATES_PER_S = [0.0005, 0.002, 0.01, 0.05, 0.5]
KEEP_ALIVES_S = [120.0, 900.0]
WORK_GCYCLES = 2.4  # 1 s at one vCPU
N_REQUESTS = 300
SEED = 77


def run_one(rate, keep_alive):
    sim = Simulator()
    platform = ServerlessPlatform(
        sim,
        PlatformConfig(
            keep_alive_s=keep_alive,
            cold_start_base_s=0.4,
            cold_start_per_package_mb_s=0.004,
        ),
    )
    platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=50))
    arrivals = PoissonArrivals(rate, RngStream(SEED))

    def driver(sim):
        t = 0.0
        submitted = []
        for _ in range(N_REQUESTS):
            t = arrivals.next_after(t)
            yield sim.timeout(t - sim.now)
            submitted.append(platform.invoke(InvocationRequest("f", WORK_GCYCLES)))
        yield sim.all_of(submitted)

    sim.run(until=sim.spawn(driver(sim)))
    latencies = sorted(r.latency for r in platform.invocations)
    p50 = latencies[len(latencies) // 2]
    p99 = latencies[int(len(latencies) * 0.99) - 1]
    return platform.cold_start_fraction(), p50, p99


def run_f2() -> Table:
    table = Table(
        ["arrival rate /s", "mean gap s", "keep-alive s", "cold %",
         "p50 latency s", "p99 latency s"],
        title=f"F2: cold-start behaviour — {N_REQUESTS} Poisson requests, "
              f"1 s of work per request",
        precision=3,
    )
    for keep_alive in KEEP_ALIVES_S:
        fractions = []
        for rate in RATES_PER_S:
            cold, p50, p99 = run_one(rate, keep_alive)
            fractions.append(cold)
            table.add_row(rate, 1.0 / rate, keep_alive, 100 * cold, p50, p99)
        # Cold fraction is (weakly) monotone decreasing in arrival rate.
        assert all(
            a >= b - 0.05 for a, b in zip(fractions, fractions[1:])
        ), fractions
        # Sparse traffic mostly cold-starts (Poisson clustering still
        # yields P(gap < keep-alive) warm hits); dense almost never.
        assert fractions[0] > 0.5
        assert fractions[-1] < 0.1
    return table


def bench_f2_coldstart(benchmark):
    table = benchmark.pedantic(run_f2, rounds=1, iterations=1)
    emit(table)

    # A longer keep-alive strictly helps at the intermediate rates.
    by_key = {(row[0], row[2]): row[3] for row in table.rows}
    mid_rate = RATES_PER_S[2]
    assert by_key[(mid_rate, 900.0)] <= by_key[(mid_rate, 120.0)]
    # The cold-start cliff is visible in tail latency at sparse rates.
    sparse_p99 = [r[5] for r in table.rows if r[0] == RATES_PER_S[0]]
    dense_p50 = [r[4] for r in table.rows if r[0] == RATES_PER_S[-1]]
    assert min(sparse_p99) > max(dense_p50)


if __name__ == "__main__":
    emit(run_f2())
