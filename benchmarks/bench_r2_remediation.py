"""R2 — Remediation: closing the loop under the R1 chaos campaigns.

Runs the same seeded workload and the same chaos schedules as R1 for
three operating modes:

* ``naive`` — retries only, no monitoring, no degradation response;
* ``alert-only`` — degradation-capable controller with a live SLO
  engine attached: alerts fire and clear, but nothing *acts* on them;
* ``remediated`` — the full closed loop: the remediation engine maps
  alerts through the policy table to traffic shifts, fallback
  tightening, and hedging escalation, plus goodput-forecast replanning.

Measured per cell: wasted spend (billed failed attempts, from the
monitor's zone ``wasted`` series), deadline misses, cloud spend, alerts
fired, actions applied, and mean alert-to-recovery time (organic clears
only).  The benchmark asserts the paper-level claim: under every
chaotic intensity the remediated run *strictly* reduces wasted spend
versus alert-only, without giving back deadline misses — and the whole
loop is bit-reproducible, action log included.
"""

import pytest

from repro.apps import Job, photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.faults import DegradationPolicy, FaultSchedule, inject_faults
from repro.metrics import Table, stable_digest
from repro.monitor.fleet import (
    FLEET_RULES,
    default_fleet_rule_overrides,
    live_fleet_slos,
)
from repro.monitor.monitor import KIND_ZONE, attach_monitor
from repro.monitor.slo import SLOEngine
from repro.remediate import attach_remediation
from repro.serverless import RetryPolicy
from repro.sim.rng import RngStream
from repro.telemetry import attach_tracer

from _common import (
    MetricSpec,
    emit,
    register_bench,
    sweep_rows,
    write_bench_summary,
)

import os

SHORT = os.environ.get("REPRO_BENCH_SHORT", "") not in ("", "0")

SEED = 171
INTENSITIES = [0.0, 1.0] if SHORT else [0.0, 0.3, 0.6, 1.0]
MODES = ["naive", "alert-only", "remediated"]
N_JOBS = 12
INPUT_MB = 3.0
RELEASE_SPACING_S = 60.0
DEADLINE_SLACK_S = 500.0
HORIZON_S = 750.0
EVAL_INTERVAL_S = 30.0


def chaos_schedule(intensity: float) -> FaultSchedule:
    """The R1 campaign at one intensity — identical for every mode."""
    return FaultSchedule.chaos(
        intensity, HORIZON_S, RngStream(SEED * 1000 + int(intensity * 100))
    )


def run_cell(mode: str, schedule: FaultSchedule):
    env = Environment.build_custom(
        seed=SEED, uplink_bandwidth=2.0e6, access_latency_s=0.030
    )
    attach_tracer(env)  # all modes record, so measurement is uniform
    if schedule:
        inject_faults(env, schedule)
    degradation = (
        None
        if mode == "naive"
        else DegradationPolicy(
            outage_aware_backoff=True,
            hedge_after_s=None,  # remediation escalates this on burn
            fallback_local=True,
        )
    )
    controller = OffloadController(
        env,
        photo_backup_app(),
        retry_policy=RetryPolicy(
            max_attempts=3, base_delay_s=1.0, multiplier=2.0
        ),
        degradation=degradation,
    )
    controller.profile_offline()
    controller.plan(input_mb=INPUT_MB)

    engine = None
    remediation = None
    if mode == "remediated":
        plane = attach_remediation(
            env, [controller], eval_interval_s=EVAL_INTERVAL_S
        )
        monitor, engine, remediation = (
            plane.monitor, plane.engine, plane.remediation
        )
    else:
        monitor = attach_monitor(env)
        if mode == "alert-only":
            slos = live_fleet_slos("faas")
            engine = SLOEngine(
                monitor,
                slos,
                rules=FLEET_RULES,
                eval_interval_s=EVAL_INTERVAL_S,
                rule_overrides=default_fleet_rule_overrides(slos),
            )
            engine.attach(env.sim)

    jobs = [
        Job(
            controller.app,
            input_mb=INPUT_MB,
            released_at=RELEASE_SPACING_S * i,
            deadline=RELEASE_SPACING_S * i + DEADLINE_SLACK_S,
            job_id=5000 + i,
        )
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    end = float(env.sim.now)
    if engine is not None:
        engine.finalize(end)

    wasted = monitor.aggregate(
        KIND_ZONE, "faas", "wasted", end, max(end, 1.0)
    ).extras.get("wasted_usd", 0.0)
    missed = sum(1 for r in report.results if not r.met_deadline)
    missed += len(report.failures)
    recoveries = (
        [a.cleared_at - a.fired_at for a in engine.alerts if a.resolved]
        if engine is not None
        else []
    )
    return {
        "miss_rate": missed / N_JOBS,
        "failed_jobs": len(report.failures),
        "cloud_usd": sum(r.cloud_cost_usd for r in report.results),
        "wasted_usd": wasted,
        "alerts_fired": len(engine.alerts) if engine is not None else 0,
        "actions_applied": (
            len(remediation.actions) if remediation is not None else 0
        ),
        "recovery_s": (
            sum(recoveries) / len(recoveries) if recoveries else None
        ),
        "action_log": (
            remediation.action_log() if remediation is not None else ""
        ),
        "digest": stable_digest(env.metrics.snapshot()),
    }


def remediation_cell(config):
    """Sweep cell: one (intensity, mode) pair of the campaign grid."""
    return run_cell(config["mode"], chaos_schedule(config["intensity"]))


@register_bench(
    "R2",
    metrics=(
        # The digest is deterministic per mode (short mode runs fewer
        # intensities, so cross-mode comparisons are skipped).
        MetricSpec("worst_cell_digest", kind="equal", same_mode=True),
    ),
    deterministic=("mode", "seed", "jobs", "intensities", "wasted_usd",
                   "recovery_s", "worst_cell_digest"),
    primary="worst_cell_digest",
)
def run_r2() -> Table:
    table = Table(
        [
            "intensity",
            "mode",
            "miss %",
            "failed",
            "cloud $",
            "wasted $",
            "alerts",
            "actions",
            "recovery s",
        ],
        title=(
            f"R2: closed-loop remediation — {N_JOBS} jobs, "
            f"{DEADLINE_SLACK_S:.0f}s slack, R1 chaos campaigns over "
            f"{HORIZON_S:.0f}s"
        ),
        precision=3,
    )
    cells = {}
    configs = [
        {"intensity": intensity, "mode": mode}
        for intensity in INTENSITIES
        for mode in MODES
    ]
    for config, cell in zip(configs, sweep_rows(remediation_cell, configs)):
        intensity, mode = config["intensity"], config["mode"]
        cells[(intensity, mode)] = cell
        table.add_row(
            intensity,
            mode,
            100.0 * cell["miss_rate"],
            cell["failed_jobs"],
            f"{cell['cloud_usd']:.2e}",
            f"{cell['wasted_usd']:.2e}",
            cell["alerts_fired"],
            cell["actions_applied"],
            "-" if cell["recovery_s"] is None else f"{cell['recovery_s']:.0f}",
        )

    # Calm weather: the whole remediation plane must cost nothing when
    # nothing burns — identical spend, zero alerts, zero actions.
    calm = INTENSITIES[0]
    for mode in MODES:
        assert cells[(calm, mode)]["wasted_usd"] == 0.0
        assert cells[(calm, mode)]["miss_rate"] == 0.0
    assert cells[(calm, "remediated")]["actions_applied"] == 0
    assert (
        cells[(calm, "remediated")]["cloud_usd"]
        == cells[(calm, "alert-only")]["cloud_usd"]
        == cells[(calm, "naive")]["cloud_usd"]
    )

    # Storms: acting on alerts must strictly reduce wasted spend versus
    # watching them, at every chaotic intensity, without giving back
    # deadline misses — and recovery must not get slower.
    for intensity in INTENSITIES[1:]:
        watched = cells[(intensity, "alert-only")]
        acted = cells[(intensity, "remediated")]
        assert acted["wasted_usd"] < watched["wasted_usd"], (
            f"remediation must strictly cut wasted spend at "
            f"intensity {intensity}"
        )
        assert acted["miss_rate"] <= watched["miss_rate"]
        assert acted["actions_applied"] >= 1
        if watched["recovery_s"] is not None:
            assert acted["recovery_s"] is not None
            assert acted["recovery_s"] <= watched["recovery_s"]

    # Determinism: the stormiest remediated cell, run twice from the
    # same seed, must reproduce its metric registry *and* its action
    # log byte for byte.
    worst = chaos_schedule(INTENSITIES[-1])
    first = run_cell("remediated", worst)
    second = run_cell("remediated", worst.merged_with(FaultSchedule()))
    assert first["digest"] == second["digest"], (
        "remediated chaos run is not reproducible"
    )
    assert first["action_log"] == second["action_log"], (
        "remediation action log is not byte-deterministic"
    )

    write_bench_summary(
        "R2",
        {
            "mode": "short" if SHORT else "full",
            "seed": SEED,
            "jobs": N_JOBS,
            "intensities": INTENSITIES,
            "wasted_usd": {
                f"{intensity}/{mode}": cells[(intensity, mode)]["wasted_usd"]
                for intensity in INTENSITIES
                for mode in MODES
            },
            "recovery_s": {
                f"{intensity}/{mode}": cells[(intensity, mode)]["recovery_s"]
                for intensity in INTENSITIES
                for mode in MODES
                if cells[(intensity, mode)]["recovery_s"] is not None
            },
            "worst_cell_digest": first["digest"],
        },
    )
    return table


def bench_r2_remediation(benchmark):
    table = benchmark.pedantic(run_r2, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_r2())
