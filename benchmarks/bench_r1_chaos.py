"""R1 — Resilience: controllers under a rising fault intensity.

Runs the same seeded workload against the same chaos campaign (link
outages and degradation, zone outages, spot-style reclamation,
stragglers, brownouts) for three controllers:

* ``naive`` — one attempt, no degradation response;
* ``retry`` — exponential-backoff retries, but fault-blind;
* ``degrade`` — retries plus outage-aware backoff, straggler hedging,
  and fallback-to-local when the cloud stays dark.

Expected shape: at intensity 0 all three are indistinguishable; as
intensity rises the naive controller sheds jobs, retry-only survives
transients but burns its budget into zone outages, and the
degradation-aware controller holds the lowest deadline-miss rate.  The
whole campaign is generated from a seeded stream, and the benchmark
asserts bit-identical metrics across two same-seed runs — chaos included,
the simulator stays reproducible.
"""

import pytest

from repro.apps import Job, photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.faults import DegradationPolicy, FaultSchedule, inject_faults
from repro.metrics import Table, stable_digest
from repro.serverless import RetryPolicy
from repro.sim.rng import RngStream

from _common import emit, sweep_rows, write_bench_summary

SEED = 171
INTENSITIES = [0.0, 0.3, 0.6, 1.0]
N_JOBS = 12
INPUT_MB = 3.0
RELEASE_SPACING_S = 60.0
DEADLINE_SLACK_S = 500.0
# Chaos windows are drawn over the span the workload is actually active
# (12 releases x 60s plus the last job's slack), so campaigns hit work
# in flight instead of empty air after the last job finishes.
HORIZON_S = 750.0

CONTROLLERS = {
    "naive": dict(
        retry_policy=RetryPolicy(max_attempts=1, base_delay_s=1.0),
        degradation=None,
    ),
    "retry": dict(
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=1.0, multiplier=2.0),
        degradation=None,
    ),
    "degrade": dict(
        retry_policy=RetryPolicy(max_attempts=3, base_delay_s=1.0, multiplier=2.0),
        degradation=DegradationPolicy(
            outage_aware_backoff=True,
            hedge_after_s=60.0,
            fallback_local=True,
            fallback_slack_fraction=0.5,
        ),
    ),
}


def chaos_schedule(intensity: float) -> FaultSchedule:
    """The campaign at one intensity — identical for every controller."""
    return FaultSchedule.chaos(
        intensity, HORIZON_S, RngStream(SEED * 1000 + int(intensity * 100))
    )


def run_cell(name: str, schedule: FaultSchedule):
    env = Environment.build_custom(
        seed=SEED, uplink_bandwidth=2.0e6, access_latency_s=0.030
    )
    if schedule:
        inject_faults(env, schedule)
    controller = OffloadController(env, photo_backup_app(), **CONTROLLERS[name])
    controller.profile_offline()
    controller.plan(input_mb=INPUT_MB)
    jobs = [
        Job(
            controller.app,
            input_mb=INPUT_MB,
            released_at=RELEASE_SPACING_S * i,
            deadline=RELEASE_SPACING_S * i + DEADLINE_SLACK_S,
            job_id=5000 + i,
        )
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    snap = env.metrics.snapshot()
    missed = sum(1 for r in report.results if not r.met_deadline)
    missed += len(report.failures)  # a lost job is the worst kind of miss
    responses = [r.finished_at - r.job.released_at for r in report.results]
    return {
        "miss_rate": missed / N_JOBS,
        "failed_jobs": len(report.failures),
        "mean_response_s": sum(responses) / len(responses) if responses else 0.0,
        "cloud_usd": sum(r.cloud_cost_usd for r in report.results),
        "fallbacks": snap.get(f"{controller.app.name}.fallbacks", 0.0),
        "hedges": snap.get("faas.hedges", 0.0),
        "outage_waits": snap.get("faas.retry.outage_waits", 0.0),
        "reclamations": snap.get("faas.reclamations", 0.0),
        "digest": stable_digest(snap),
    }


def chaos_cell(config):
    """Sweep cell: one (intensity, controller) pair of the campaign grid."""
    return run_cell(config["controller"], chaos_schedule(config["intensity"]))


def run_r1() -> Table:
    table = Table(
        [
            "intensity",
            "controller",
            "miss %",
            "failed",
            "mean resp s",
            "cloud $",
            "fallbacks",
            "hedges",
            "outage waits",
            "reclaims",
        ],
        title=(
            f"R1: chaos resilience — {N_JOBS} jobs, {DEADLINE_SLACK_S:.0f}s "
            f"slack, seeded fault campaigns over {HORIZON_S:.0f}s"
        ),
        precision=3,
    )
    miss_rates = {}
    configs = [
        {"intensity": intensity, "controller": name}
        for intensity in INTENSITIES
        for name in CONTROLLERS
    ]
    cells = sweep_rows(chaos_cell, configs)
    for config, cell in zip(configs, cells):
        intensity, name = config["intensity"], config["controller"]
        miss_rates[(intensity, name)] = cell["miss_rate"]
        table.add_row(
            intensity,
            name,
            100.0 * cell["miss_rate"],
            cell["failed_jobs"],
            cell["mean_response_s"],
            f"{cell['cloud_usd']:.2e}",
            int(cell["fallbacks"]),
            int(cell["hedges"]),
            int(cell["outage_waits"]),
            int(cell["reclamations"]),
        )

    # Determinism: the most chaotic cell, run twice from the same seed,
    # must reproduce its *entire* metric registry bit-for-bit.
    worst = chaos_schedule(INTENSITIES[-1])
    first = run_cell("degrade", worst)
    second = run_cell("degrade", worst.merged_with(FaultSchedule()))
    assert first["digest"] == second["digest"], "chaos run is not reproducible"

    # Calm weather: degradation machinery must cost nothing when idle.
    calm = INTENSITIES[0]
    assert miss_rates[(calm, "naive")] == miss_rates[(calm, "degrade")] == 0.0

    # Storm: graceful degradation must beat the fault-blind retry loop.
    storm = INTENSITIES[-1]
    assert (
        miss_rates[(storm, "degrade")] < miss_rates[(storm, "retry")]
    ), "degradation-aware controller should out-survive retry-only"
    assert miss_rates[(storm, "retry")] <= miss_rates[(storm, "naive")]
    write_bench_summary(
        "r1_chaos",
        {
            "seed": SEED,
            "jobs": N_JOBS,
            "intensities": INTENSITIES,
            "miss_rate": {
                f"{intensity}/{name}": rate
                for (intensity, name), rate in sorted(miss_rates.items())
            },
            "worst_cell_digest": first["digest"],
        },
    )
    return table


def bench_r1_chaos(benchmark):
    table = benchmark.pedantic(run_r1, rounds=1, iterations=1)
    emit(table)


if __name__ == "__main__":
    emit(run_r1())
