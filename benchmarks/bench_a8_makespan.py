"""A8 — Ablation: serialized proxy vs direct makespan optimisation.

The exact partitioners optimise a *serialized* latency proxy (sum of
durations + cut transfers) because it is separable and min-cut-solvable.
On graphs with real parallelism the proxy can deviate from the true
DAG-makespan optimum.  This ablation quantifies the deviation across
fan-out graphs under interactive (latency-heavy) weights, and shows that
seeding simulated annealing with the proxy solution recovers the exact
makespan optimum.
"""

import pytest

from repro.apps import fanout_fanin_app
from repro.core.partitioning import (
    ExhaustivePartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    PartitionContext,
    SimulatedAnnealingPartitioner,
    evaluate_partition,
)
from repro.metrics import Table
from repro.sim.rng import RngStream

from _common import emit

N_INSTANCES = 25
WIDTH = 5
UPLINKS = (2.5e5, 1.25e6)
SEED = 171


def makespan_score(ctx, partition):
    evaluation = evaluate_partition(ctx, partition)
    return ctx.weights.combine(
        evaluation.makespan_s, evaluation.ue_energy_j, evaluation.cloud_cost_usd
    )


def run_a8() -> Table:
    table = Table(
        ["uplink Mbit/s", "instances", "proxy gap >0", "proxy max gap %",
         "proxy mean gap %", "annealing max gap %"],
        title=f"A8: makespan optimality — fanout-{WIDTH} graphs, "
              f"interactive weights, gap vs exhaustive-makespan",
        precision=3,
    )
    weights = ObjectiveWeights.interactive()
    for uplink in UPLINKS:
        proxy_gaps = []
        annealing_gaps = []
        for index in range(N_INSTANCES):
            app = fanout_fanin_app(WIDTH, RngStream(SEED + index))
            work = {c.name: c.work_for(2.0) for c in app.components}
            ctx = PartitionContext(
                app=app, input_mb=2.0, work=work, uplink_bps=uplink,
                weights=weights,
            )
            optimal = makespan_score(
                ctx, ExhaustivePartitioner(use_makespan=True).partition(ctx)
            )
            proxy = makespan_score(ctx, MinCutPartitioner().partition(ctx))
            annealed = makespan_score(
                ctx,
                SimulatedAnnealingPartitioner(
                    RngStream(SEED + 1000 + index), iterations=800
                ).partition(ctx),
            )
            proxy_gaps.append(100 * (proxy / optimal - 1))
            annealing_gaps.append(100 * (annealed / optimal - 1))
            # The annealer never does worse than its min-cut seed.
            assert annealed <= proxy + 1e-9
        table.add_row(
            uplink * 8 / 1e6,
            N_INSTANCES,
            sum(1 for g in proxy_gaps if g > 1e-4),
            max(proxy_gaps),
            sum(proxy_gaps) / len(proxy_gaps),
            max(annealing_gaps),
        )
        # The proxy stays near-optimal; annealing is (empirically) exact.
        assert max(proxy_gaps) < 2.0
        assert max(annealing_gaps) < 0.05
    return table


def bench_a8_makespan(benchmark):
    table = benchmark.pedantic(run_a8, rounds=1, iterations=1)
    emit(table)
    # The gap is real on at least one uplink (the proxy is not free).
    assert max(table.column("proxy gap >0")) >= 1


if __name__ == "__main__":
    emit(run_a8())
