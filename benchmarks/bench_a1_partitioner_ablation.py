"""A1 — Ablation: partitioning algorithms across graph families.

Validates the exactness claims at scale: over dozens of random graphs
per family, min-cut (and DP on trees) must match exhaustive enumeration
bit-for-bit, while greedy's worst-case gap and the myopic heuristic's
gap are quantified.
"""

import pytest

from repro.apps import (
    fanout_fanin_app,
    layered_random_app,
    linear_pipeline_app,
    random_tree_app,
)
from repro.baselines import MyopicLatencyPartitioner
from repro.core.partitioning import (
    ExhaustivePartitioner,
    GreedyPartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    PartitionContext,
    TreeDPPartitioner,
)
from repro.metrics import Table
from repro.sim.rng import RngStream

from _common import emit

N_INSTANCES = 12
SEED = 101

FAMILIES = [
    ("pipeline-8", lambda rng: linear_pipeline_app(8, rng)),
    ("fanout-6", lambda rng: fanout_fanin_app(6, rng)),
    ("tree-10", lambda rng: random_tree_app(10, rng)),
    ("layered-3x3", lambda rng: layered_random_app(3, 3, rng)),
]


def make_context(app, uplink_bps):
    work = {c.name: c.work_for(3.0) for c in app.components}
    return PartitionContext(
        app=app, input_mb=3.0, work=work, uplink_bps=uplink_bps,
        weights=ObjectiveWeights(),
    )


def run_a1() -> Table:
    table = Table(
        ["family", "instances", "mincut=opt", "dp=opt", "greedy max gap %",
         "myopic max gap %", "myopic mean gap %"],
        title=f"A1: partitioner ablation — {N_INSTANCES} random instances "
              f"per family, 3 uplink rates each",
        precision=2,
    )
    for family_name, factory in FAMILIES:
        rng = RngStream(SEED)
        mincut_exact = 0
        dp_exact = 0
        dp_applicable = 0
        greedy_gaps = []
        myopic_gaps = []
        trials = 0
        for _ in range(N_INSTANCES):
            app = factory(rng)
            for uplink in (2.5e5, 1.25e6, 1.25e7):
                trials += 1
                ctx = make_context(app, uplink)
                optimal = ExhaustivePartitioner().evaluate(ctx).objective
                mincut = MinCutPartitioner().evaluate(ctx).objective
                if abs(mincut - optimal) <= 1e-7 * max(optimal, 1.0):
                    mincut_exact += 1
                if app.is_tree():
                    dp_applicable += 1
                    dp = TreeDPPartitioner().evaluate(ctx).objective
                    if abs(dp - optimal) <= 1e-7 * max(optimal, 1.0):
                        dp_exact += 1
                greedy = GreedyPartitioner().evaluate(ctx).objective
                myopic = MyopicLatencyPartitioner().evaluate(ctx).objective
                greedy_gaps.append(100 * (greedy / optimal - 1))
                myopic_gaps.append(100 * (myopic / optimal - 1))
        table.add_row(
            family_name,
            trials,
            f"{mincut_exact}/{trials}",
            f"{dp_exact}/{dp_applicable}" if dp_applicable else "n/a",
            max(greedy_gaps),
            max(myopic_gaps),
            sum(myopic_gaps) / len(myopic_gaps),
        )
        # Exactness must hold on every instance.
        assert mincut_exact == trials, family_name
        assert dp_exact == dp_applicable, family_name
        assert max(greedy_gaps) < 5.0, family_name
    return table


def bench_a1_partitioner_ablation(benchmark):
    table = benchmark.pedantic(run_a1, rounds=1, iterations=1)
    emit(table)
    # The myopic heuristic must lose visibly somewhere — whole-graph
    # optimisation has measurable value.
    assert max(table.column("myopic max gap %")) > 5.0


if __name__ == "__main__":
    emit(run_a1())
