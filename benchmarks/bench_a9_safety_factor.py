"""A9 — Ablation: the scheduler's deadline safety factor.

The batcher defers each job up to ``deadline − safety·estimate``.  The
safety factor absorbs estimation error (demand noise, cold starts,
queueing): too small and deferral gambles with deadlines, too large and
slack is left on the table (less batching, earlier dispatches).  The
sweep runs under deliberately high execution noise so the risk is real.
"""

import pytest

from repro import DeadlineBatcher, Environment, Job, OffloadController, photo_backup_app
from repro.metrics import Table
from repro.serverless.platform import PlatformConfig

from _common import emit

SAFETY_FACTORS = [1.0, 1.25, 1.5, 2.0, 3.0]
N_JOBS = 20
INPUT_MB = 4.0
SLACK_S = 120.0  # tight enough that the safety clamp binds
SEED = 181
NOISE_SIGMA = 0.35  # heavy run-to-run demand variation


def run_factor(safety_factor):
    env = Environment.build(
        seed=SEED,
        connectivity="4g",
        execution_noise_sigma=NOISE_SIGMA,
        platform_config=PlatformConfig(keep_alive_s=240.0),
    )
    controller = OffloadController(
        env,
        photo_backup_app(),
        scheduler=DeadlineBatcher(window_s=400.0, safety_factor=safety_factor),
    )
    controller.profile_offline()
    controller.plan(input_mb=INPUT_MB)
    jobs = [
        Job(controller.app, input_mb=INPUT_MB, released_at=120.0 * i,
            deadline=120.0 * i + SLACK_S)
        for i in range(N_JOBS)
    ]
    report = controller.run_workload(jobs)
    deferral = sum(
        max(result.started_at - result.job.released_at, 0.0)
        for result in report.results
    ) / max(report.jobs_completed, 1)
    return report, deferral, env.platform.cold_start_fraction()


def run_a9() -> Table:
    table = Table(
        ["safety factor", "miss %", "mean deferral s", "mean resp s",
         "cold %"],
        title=f"A9: batcher safety factor — {N_JOBS} jobs, "
              f"{SLACK_S:.0f} s slack, ±35% execution noise",
        precision=2,
    )
    misses = []
    deferrals = []
    for safety_factor in SAFETY_FACTORS:
        report, deferral, cold_fraction = run_factor(safety_factor)
        misses.append(report.deadline_miss_rate)
        deferrals.append(deferral)
        table.add_row(
            safety_factor,
            100 * report.deadline_miss_rate,
            deferral,
            report.mean_response_s,
            100 * cold_fraction,
        )
    # More safety margin => (weakly) fewer misses and less deferral.
    assert all(a >= b - 1e-9 for a, b in zip(misses, misses[1:])), misses
    assert all(a >= b - 1e-6 for a, b in zip(deferrals, deferrals[1:])), deferrals
    # The conservative end is safe even under heavy noise.
    assert misses[-1] == 0.0
    return table


def bench_a9_safety_factor(benchmark):
    table = benchmark.pedantic(run_a9, rounds=1, iterations=1)
    emit(table)
    # The whole point: safety is a miss-vs-deferral dial, visible in data.
    assert max(table.column("mean deferral s")) > min(
        table.column("mean deferral s")
    )


if __name__ == "__main__":
    emit(run_a9())
