"""F9 — The latency / energy / cost trade space (Pareto frontier).

The weighted objective collapses three axes into one number; this figure
shows what got collapsed.  Every feasible partition of the photo-backup
app is priced on (makespan, UE energy, cloud cost) and the non-dominated
set extracted.  Expected shape: local-only and full-offload anchor the
frontier's ends, the optimiser's picks for interactive and
non-time-critical weights both *lie on* the frontier, and the frontier
itself is small — most of the 2^n partitions are strictly dominated.
"""

import itertools

import pytest

from repro.apps import photo_backup_app
from repro.core.partitioning import (
    MinCutPartitioner,
    ObjectiveWeights,
    Partition,
    PartitionContext,
    PartitionEvaluation,
    evaluate_partition,
    pareto_front,
)
from repro.metrics import Table

from _common import emit, sweep_rows

INPUT_MB = 4.0
UPLINK_BPS = 5e5  # 4 Mbit/s: near the crossover, where trades are real


def make_context(weights=None):
    app = photo_backup_app()
    work = {c.name: c.work_for(INPUT_MB) for c in app.components}
    return app, PartitionContext(
        app=app, input_mb=INPUT_MB, work=work, uplink_bps=UPLINK_BPS,
        weights=weights or ObjectiveWeights(),
    )


def pareto_cell(config):
    """Sweep cell: price one partition on every axis."""
    app, ctx = make_context()
    partition = Partition(app.name, frozenset(config["cloud"]))
    evaluation = evaluate_partition(ctx, partition)
    return {
        "serialized_latency_s": evaluation.serialized_latency_s,
        "makespan_s": evaluation.makespan_s,
        "ue_energy_j": evaluation.ue_energy_j,
        "cloud_cost_usd": evaluation.cloud_cost_usd,
        "objective": evaluation.objective,
    }


def all_evaluations(app, ctx):
    offloadable = app.offloadable_names()
    configs = [
        {"cloud": sorted(subset)}
        for r in range(len(offloadable) + 1)
        for subset in itertools.combinations(offloadable, r)
    ]
    cells = sweep_rows(pareto_cell, configs)
    return [
        PartitionEvaluation(
            partition=Partition(app.name, frozenset(config["cloud"])),
            serialized_latency_s=cell["serialized_latency_s"],
            makespan_s=cell["makespan_s"],
            ue_energy_j=cell["ue_energy_j"],
            cloud_cost_usd=cell["cloud_cost_usd"],
            objective=cell["objective"],
        )
        for config, cell in zip(configs, cells)
    ]


def two_axis_frontier(evaluations):
    """Non-dominated set on (makespan, cost) alone — the curve the
    latency-vs-dollars conversation is actually about."""
    pool = sorted(evaluations, key=lambda e: (e.makespan_s, e.cloud_cost_usd))
    frontier = []
    best_cost = float("inf")
    for evaluation in pool:
        if evaluation.cloud_cost_usd < best_cost - 1e-15:
            frontier.append(evaluation)
            best_cost = evaluation.cloud_cost_usd
    return frontier


def run_f9() -> Table:
    app, ctx = make_context()
    evaluations = all_evaluations(app, ctx)
    frontier3d = pareto_front(evaluations)
    frontier_keys = {e.partition.cloud for e in frontier3d}
    frontier = two_axis_frontier(evaluations)

    interactive_pick = MinCutPartitioner().partition(
        make_context(ObjectiveWeights.interactive())[1]
    )
    ntc_pick = MinCutPartitioner().partition(
        make_context(ObjectiveWeights.non_time_critical())[1]
    )

    table = Table(
        ["partition (cloud side)", "makespan s", "energy J", "cost $",
         "frontier", "picked by"],
        title=f"F9: the makespan/cost frontier — photo backup, "
              f"{INPUT_MB:.0f} MB at {UPLINK_BPS * 8 / 1e6:.0f} Mbit/s "
              f"({len(evaluations)} feasible partitions, "
              f"{len(frontier)} on the 2-axis frontier, "
              f"{len(frontier3d)} on the 3-axis one)",
        precision=2,
    )
    shown = sorted(frontier, key=lambda e: e.makespan_s)
    shown_keys = {e.partition.cloud for e in shown}
    # Ensure the weight presets' picks appear even when they sit on the
    # 3-axis frontier only (energy breaks the 2-axis tie).
    extras = [
        e for e in evaluations
        if e.partition.cloud in {interactive_pick.cloud, ntc_pick.cloud}
        and e.partition.cloud not in shown_keys
    ]
    for evaluation in shown + sorted(extras, key=lambda e: e.makespan_s):
        cloud = evaluation.partition.cloud
        picked = []
        if cloud == interactive_pick.cloud:
            picked.append("interactive")
        if cloud == ntc_pick.cloud:
            picked.append("ntc")
        label = "{" + ", ".join(sorted(cloud)) + "}" if cloud else "(local-only)"
        table.add_row(
            label[:44], evaluation.makespan_s, evaluation.ue_energy_j,
            evaluation.cloud_cost_usd,
            "2-axis" if cloud in shown_keys else "3-axis",
            "+".join(picked) or "-",
        )

    # Shape assertions: the 2-axis curve is sparse (most partitions are
    # strictly dominated once energy ties are projected out), both weight
    # presets pick 3-axis-efficient partitions, and local-only anchors
    # the zero-cost corner.
    assert len(frontier) < 0.4 * len(evaluations)
    assert interactive_pick.cloud in frontier_keys
    assert ntc_pick.cloud in frontier_keys
    assert any(not e.partition.cloud for e in frontier)
    return table


def bench_f9_pareto(benchmark):
    table = benchmark.pedantic(run_f9, rounds=1, iterations=1)
    emit(table)
    # The frontier spans a real trade: fastest vs cheapest differ a lot.
    makespans = table.column("makespan s")
    costs = table.column("cost $")
    assert max(makespans) > 1.3 * min(makespans)
    assert max(costs) > 0 and min(costs) == 0.0


if __name__ == "__main__":
    emit(run_f9())
