"""Unit tests for sim resources (Resource, PriorityResource, Store, Container)."""

import pytest

from repro.sim import Container, PriorityResource, Resource, Simulator, Store


@pytest.fixture
def sim():
    return Simulator()


class TestResource:
    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Resource(sim, capacity=0)

    def test_grants_up_to_capacity(self, sim):
        resource = Resource(sim, capacity=2)
        r1, r2, r3 = resource.request(), resource.request(), resource.request()
        assert r1.triggered and r2.triggered
        assert not r3.triggered
        assert resource.in_use == 2
        assert resource.queue_length == 1

    def test_release_grants_next_in_fifo_order(self, sim):
        resource = Resource(sim, capacity=1)
        order = []

        def worker(sim, tag):
            request = resource.request()
            yield request
            order.append((tag, sim.now))
            yield sim.timeout(1.0)
            resource.release(request)

        for tag in ("a", "b", "c"):
            sim.spawn(worker(sim, tag))
        sim.run()
        assert order == [("a", 0.0), ("b", 1.0), ("c", 2.0)]

    def test_release_queued_request_cancels_it(self, sim):
        resource = Resource(sim, capacity=1)
        held = resource.request()
        queued = resource.request()
        resource.release(queued)  # cancel
        assert resource.queue_length == 0
        resource.release(held)
        assert resource.in_use == 0

    def test_release_unknown_request_rejected(self, sim):
        r1 = Resource(sim, capacity=1)
        r2 = Resource(sim, capacity=1)
        request = r1.request()
        with pytest.raises(RuntimeError):
            r2.release(request)

    def test_context_manager_releases(self, sim):
        resource = Resource(sim, capacity=1)

        def worker(sim):
            with resource.request() as request:
                yield request
                yield sim.timeout(1.0)
            return resource.in_use

        process = sim.spawn(worker(sim))
        assert sim.run(until=process) == 0


class TestPriorityResource:
    def test_serves_lowest_priority_value_first(self, sim):
        resource = PriorityResource(sim, capacity=1)
        order = []

        def holder(sim):
            request = resource.request(priority=0)
            yield request
            yield sim.timeout(1.0)
            resource.release(request)

        def worker(sim, tag, priority):
            yield sim.timeout(0.1)  # ensure holder got the slot first
            request = resource.request(priority=priority)
            yield request
            order.append(tag)
            resource.release(request)

        sim.spawn(holder(sim))
        sim.spawn(worker(sim, "low-urgency", 5.0))
        sim.spawn(worker(sim, "high-urgency", 1.0))
        sim.run()
        assert order == ["high-urgency", "low-urgency"]

    def test_ties_broken_by_arrival(self, sim):
        resource = PriorityResource(sim, capacity=1)
        blocker = resource.request(priority=0)
        first = resource.request(priority=2)
        second = resource.request(priority=2)
        resource.release(blocker)
        sim.run()
        assert first.triggered
        assert not second.triggered

    def test_cancel_queued_priority_request(self, sim):
        resource = PriorityResource(sim, capacity=1)
        blocker = resource.request()
        queued = resource.request(priority=1)
        resource.release(queued)
        assert resource.queue_length == 0
        resource.release(blocker)


class TestStore:
    def test_put_get_fifo(self, sim):
        store = Store(sim)
        got = []

        def producer(sim):
            for item in ("x", "y"):
                yield store.put(item)

        def consumer(sim):
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert got == ["x", "y"]

    def test_get_blocks_until_put(self, sim):
        store = Store(sim)
        moments = []

        def consumer(sim):
            item = yield store.get()
            moments.append((sim.now, item))

        def producer(sim):
            yield sim.timeout(5.0)
            yield store.put("late")

        sim.spawn(consumer(sim))
        sim.spawn(producer(sim))
        sim.run()
        assert moments == [(5.0, "late")]

    def test_put_blocks_when_full(self, sim):
        store = Store(sim, capacity=1)
        events = []

        def producer(sim):
            yield store.put(1)
            events.append(("put1", sim.now))
            yield store.put(2)
            events.append(("put2", sim.now))

        def consumer(sim):
            yield sim.timeout(3.0)
            yield store.get()

        sim.spawn(producer(sim))
        sim.spawn(consumer(sim))
        sim.run()
        assert events == [("put1", 0.0), ("put2", 3.0)]

    def test_capacity_validation(self, sim):
        with pytest.raises(ValueError):
            Store(sim, capacity=0)

    def test_len_reports_buffered(self, sim):
        store = Store(sim)
        store.put("a")
        sim.run()
        assert len(store) == 1


class TestContainer:
    def test_initial_level(self, sim):
        container = Container(sim, capacity=10.0, init=4.0)
        assert container.level == 4.0

    def test_init_validation(self, sim):
        with pytest.raises(ValueError):
            Container(sim, capacity=5.0, init=6.0)

    def test_get_blocks_until_enough(self, sim):
        container = Container(sim, capacity=10.0, init=1.0)
        events = []

        def taker(sim):
            yield container.get(5.0)
            events.append(sim.now)

        def filler(sim):
            yield sim.timeout(2.0)
            yield container.put(4.0)

        sim.spawn(taker(sim))
        sim.spawn(filler(sim))
        sim.run()
        assert events == [2.0]
        assert container.level == 0.0

    def test_put_blocks_when_overful(self, sim):
        container = Container(sim, capacity=5.0, init=4.0)
        events = []

        def putter(sim):
            yield container.put(3.0)
            events.append(sim.now)

        def drainer(sim):
            yield sim.timeout(1.0)
            yield container.get(2.0)

        sim.spawn(putter(sim))
        sim.spawn(drainer(sim))
        sim.run()
        assert events == [1.0]
        assert container.level == 5.0

    def test_get_more_than_capacity_rejected(self, sim):
        container = Container(sim, capacity=5.0)
        with pytest.raises(ValueError):
            container.get(6.0)

    def test_negative_amounts_rejected(self, sim):
        container = Container(sim, capacity=5.0)
        with pytest.raises(ValueError):
            container.put(-1.0)
        with pytest.raises(ValueError):
            container.get(-1.0)
