"""Tests for the closed-loop remediation plane.

Covers the policy table (matching, validation), the forecasting math
(EWMA / Holt linear), the controller actuator (every action kind plus
its no-op saturation), the remediation engine (cooldowns, canonical
action log, forecast pump, clear-driven unpinning), and the
``attach_remediation`` wiring end to end under a seeded chaos campaign.
"""

import pytest

from repro.apps import Job, photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.faults import DegradationPolicy, FaultSchedule, inject_faults
from repro.monitor.slo import Alert
from repro.remediate import (
    ACTION_ESCALATE_HEDGING,
    ACTION_FALLBACK_LOCAL,
    ACTION_REPLAN_RATE,
    ACTION_SHIFT_TRAFFIC,
    Action,
    ControllerActuator,
    DEFAULT_POLICY,
    Forecast,
    LinkForecaster,
    PolicyRule,
    RemediationEngine,
    attach_remediation,
    ewma,
    holt_linear,
)
from repro.remediate.forecast import forecast_ahead
from repro.serverless import RetryPolicy
from repro.sim.rng import RngStream
from repro.telemetry import attach_tracer


class TestPolicyRule:
    def test_glob_and_severity_matching(self):
        rule = PolicyRule(
            "r", ACTION_SHIFT_TRAFFIC, match_slo="availability*",
            match_severity="page",
        )
        assert rule.matches("availability:faas", "page")
        assert not rule.matches("availability:faas", "ticket")
        assert not rule.matches("uplink-stall", "page")

    def test_wildcards_match_everything(self):
        rule = PolicyRule("r", ACTION_FALLBACK_LOCAL)
        assert rule.matches("anything", "page")
        assert rule.matches("uplink-stall", "ticket")

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown action"):
            PolicyRule("r", "reboot-the-moon")

    def test_negative_cooldown_rejected(self):
        with pytest.raises(ValueError, match="cooldown"):
            PolicyRule("r", ACTION_SHIFT_TRAFFIC, cooldown_s=-1.0)

    def test_default_policy_covers_the_slo_vocabulary(self):
        matched = {
            slo: [r.name for r in DEFAULT_POLICY if r.matches(slo, "page")]
            for slo in (
                "availability:faas", "uplink-stall", "cold-start:app",
                "cost:budget",
            )
        }
        assert all(matched.values()), f"unmatched SLOs: {matched}"


class TestForecastMath:
    def test_ewma_degenerate_cases(self):
        assert ewma([]) is None
        assert ewma([5.0], alpha=0.5) == 5.0
        assert ewma([1.0, 2.0, 3.0], alpha=1.0) == 3.0

    def test_ewma_alpha_validated(self):
        with pytest.raises(ValueError):
            ewma([1.0], alpha=0.0)

    def test_holt_recovers_a_linear_trend_exactly(self):
        assert holt_linear([0.0, 2.0, 4.0, 6.0], alpha=1.0, beta=1.0) == (
            6.0, 2.0,
        )

    def test_holt_needs_two_points(self):
        assert holt_linear([1.0]) is None

    def test_holt_parameters_validated(self):
        with pytest.raises(ValueError):
            holt_linear([1.0, 2.0], alpha=2.0)
        with pytest.raises(ValueError):
            holt_linear([1.0, 2.0], beta=-0.1)

    def test_forecast_ahead_floors_at_zero(self):
        # Perfectly linear decline: level 2, trend -2, five steps out
        # would be -8 — a goodput forecast can never go negative.
        assert forecast_ahead([6.0, 4.0, 2.0], 5.0, alpha=1.0, beta=1.0) == 0.0


class _FakeMonitor:
    bucket_s = 10.0

    def __init__(self, points):
        self._points = points

    def link_goodput_points(self, link, now, window_s):
        return list(self._points)


class TestLinkForecaster:
    def test_flags_a_collapsing_link(self):
        points = [(10.0, 2.0e6), (20.0, 1.0e6), (30.0, 0.5e6)]
        forecaster = LinkForecaster(_FakeMonitor(points))
        verdict = forecaster.assess(30.0)
        assert verdict is not None
        assert verdict.link == "uplink"
        assert verdict.baseline_bps == 2.0e6
        assert verdict.forecast_bps < 0.5 * verdict.baseline_bps

    def test_quiet_on_a_flat_link(self):
        points = [(10.0, 1.0e6), (20.0, 1.0e6), (30.0, 1.0e6)]
        assert LinkForecaster(_FakeMonitor(points)).assess(30.0) is None

    def test_quiet_below_min_points(self):
        points = [(10.0, 2.0e6), (20.0, 0.1e6)]
        assert LinkForecaster(_FakeMonitor(points)).assess(20.0) is None

    def test_parameters_validated(self):
        with pytest.raises(ValueError):
            LinkForecaster(_FakeMonitor([]), degraded_fraction=1.0)
        with pytest.raises(ValueError):
            LinkForecaster(_FakeMonitor([]), min_points=1)

    def test_detail_renders_canonically(self):
        forecast = Forecast(
            link="uplink", at=30.0, horizon_s=60.0, observed_bps=1.0,
            forecast_bps=0.5, baseline_bps=2.0,
        )
        assert forecast.detail() == (
            "link=uplink forecast_bps=0.5 baseline_bps=2.0 horizon_s=60.0"
        )


def _controller(with_degradation=True):
    env = Environment.build_custom(seed=3)
    degradation = (
        DegradationPolicy(
            outage_aware_backoff=True, hedge_after_s=None, fallback_local=True
        )
        if with_degradation
        else None
    )
    controller = OffloadController(
        env, photo_backup_app(), degradation=degradation
    )
    controller.profile_offline()
    controller.plan(input_mb=2.0)
    return controller


class TestControllerActuator:
    def test_escalate_hedging_starts_then_halves_to_the_floor(self):
        controller = _controller()
        actuator = ControllerActuator([controller])
        assert actuator.apply(ACTION_ESCALATE_HEDGING, 0.0) == (
            "hedge_after_s=60.0"
        )
        assert actuator.apply(ACTION_ESCALATE_HEDGING, 0.0) == (
            "hedge_after_s=30.0"
        )
        assert actuator.apply(ACTION_ESCALATE_HEDGING, 0.0) == (
            "hedge_after_s=15.0"
        )
        # Saturated at the floor: further escalation is a no-op.
        assert actuator.apply(ACTION_ESCALATE_HEDGING, 0.0) is None
        assert controller.degradation.hedge_after_s == 15.0

    def test_actions_are_noops_without_a_degradation_policy(self):
        actuator = ControllerActuator([_controller(with_degradation=False)])
        assert actuator.apply(ACTION_ESCALATE_HEDGING, 0.0) is None
        assert actuator.apply(ACTION_FALLBACK_LOCAL, 0.0) is None

    def test_tighten_fallback_halves_with_a_floor(self):
        controller = _controller()
        actuator = ControllerActuator([controller])
        assert actuator.apply(ACTION_FALLBACK_LOCAL, 0.0) == (
            "fallback_slack_fraction=0.25"
        )
        assert actuator.apply(ACTION_FALLBACK_LOCAL, 0.0) == (
            "fallback_slack_fraction=0.125"
        )
        assert actuator.apply(ACTION_FALLBACK_LOCAL, 0.0) == (
            "fallback_slack_fraction=0.1"
        )
        assert actuator.apply(ACTION_FALLBACK_LOCAL, 0.0) is None

    def test_tighten_fallback_enables_a_disabled_policy(self):
        controller = _controller()
        controller.degradation = DegradationPolicy(fallback_local=False)
        actuator = ControllerActuator([controller])
        assert actuator.apply(ACTION_FALLBACK_LOCAL, 0.0) == (
            "fallback_slack_fraction=0.5"
        )
        assert controller.degradation.fallback_local is True

    def test_shift_traffic_holds_and_does_not_shrink(self):
        controller = _controller()
        actuator = ControllerActuator([controller], hold_local_s=300.0)
        assert actuator.apply(ACTION_SHIFT_TRAFFIC, 100.0) == (
            "hold_local_until=400.0"
        )
        assert controller._hold_local_until == 400.0
        # Re-applying at the same instant cannot extend the hold.
        assert actuator.apply(ACTION_SHIFT_TRAFFIC, 100.0) is None
        assert actuator.apply(ACTION_SHIFT_TRAFFIC, 200.0) == (
            "hold_local_until=500.0"
        )

    def test_reallocate_memory_floors_at_the_next_tier(self):
        controller = _controller()
        actuator = ControllerActuator([controller])
        before = max(d.memory_mb for d in controller.allocation.values())
        detail = actuator.apply("reallocate-memory", 0.0)
        assert detail is not None and detail.startswith("memory_floor_mb=")
        floor = controller.memory_floor_mb
        assert floor > before
        # The floor lands on the deployed functions, not the planner's
        # stored decisions.
        platform = controller.env.platform
        for component in controller.allocation:
            spec = platform.spec(controller._function_name(component))
            assert spec.memory_mb >= floor

    def test_replan_rate_pins_and_clear_unpins(self):
        controller = _controller()
        actuator = ControllerActuator([controller])
        forecast = Forecast(
            link="uplink", at=10.0, horizon_s=60.0, observed_bps=1.0e6,
            forecast_bps=0.4e6, baseline_bps=2.0e6,
        )
        assert actuator.apply(
            ACTION_REPLAN_RATE, 10.0, forecast=forecast
        ) == forecast.detail()
        assert controller.plan_rate_overrides == {"uplink": 0.4e6}
        # Same forecast again: nothing changed, so a no-op.
        assert actuator.apply(
            ACTION_REPLAN_RATE, 10.0, forecast=forecast
        ) is None
        assert actuator.clear_rate_override("uplink") == "link=uplink"
        assert controller.plan_rate_overrides == {}
        assert actuator.clear_rate_override("uplink") is None

    def test_unknown_action_kind_rejected(self):
        actuator = ControllerActuator([_controller()])
        with pytest.raises(ValueError, match="unknown action"):
            actuator.apply("defragment", 0.0)

    def test_needs_at_least_one_controller(self):
        with pytest.raises(ValueError):
            ControllerActuator([])


class _StubSLOEngine:
    eval_interval_s = 30.0

    def __init__(self):
        self.listeners = []

    def subscribe(self, listener):
        self.listeners.append(listener)


class _StubActuator:
    def __init__(self, quiet=False):
        self.calls = []
        self.quiet = quiet

    def apply(self, kind, now, forecast=None):
        self.calls.append((kind, now))
        return None if self.quiet else f"applied {kind}"

    def clear_rate_override(self, link):
        self.calls.append(("clear", link))
        return None if self.quiet else f"link={link}"


def _alert(slo="availability:z", severity="page", entity="zone/z"):
    return Alert(
        slo=slo, rule="fast", severity=severity, entity=entity,
        fired_at=100.0, burn_short=2.0, burn_long=2.0,
    )


class TestRemediationEngine:
    def test_policy_rules_apply_in_table_order(self):
        actuator = _StubActuator()
        engine = RemediationEngine(_StubSLOEngine(), actuator)
        engine.on_alert_fired(_alert(), 100.0)
        # availability + page matches shift, hedge, and fallback rules.
        assert [kind for kind, _ in actuator.calls] == [
            ACTION_SHIFT_TRAFFIC,
            ACTION_ESCALATE_HEDGING,
            ACTION_FALLBACK_LOCAL,
        ]
        assert [a.rule for a in engine.actions] == [
            "availability-shift", "availability-hedge",
            "availability-fallback",
        ]

    def test_cooldowns_gate_per_rule_and_entity(self):
        actuator = _StubActuator()
        engine = RemediationEngine(_StubSLOEngine(), actuator)
        engine.on_alert_fired(_alert(), 100.0)
        engine.on_alert_fired(_alert(), 150.0)  # all three still cooling
        assert len(engine.actions) == 3
        # At t=350: shift (180s) and hedge (120s) are cool again, the
        # fallback rule (300s) is not.
        engine.on_alert_fired(_alert(), 350.0)
        assert [a.rule for a in engine.actions[3:]] == [
            "availability-shift", "availability-hedge",
        ]
        # A different entity has its own cooldown clock.
        engine.on_alert_fired(_alert(entity="zone/other"), 150.0)
        assert len([a for a in engine.actions if a.entity == "zone/other"]) == 3

    def test_noop_actions_are_not_logged_or_cooled(self):
        actuator = _StubActuator(quiet=True)
        engine = RemediationEngine(_StubSLOEngine(), actuator)
        engine.on_alert_fired(_alert(), 100.0)
        assert engine.actions == []
        # The knob freeing up later must be re-attempted (no cooldown
        # was recorded for the no-ops).
        actuator.quiet = False
        engine.on_alert_fired(_alert(), 101.0)
        assert len(engine.actions) == 3

    def test_cleared_link_alert_drops_the_rate_pin(self):
        actuator = _StubActuator()
        engine = RemediationEngine(_StubSLOEngine(), actuator)
        engine.on_alert_cleared(_alert(slo="uplink-stall",
                                       entity="link/uplink"), 200.0)
        assert actuator.calls == [("clear", "uplink")]
        (action,) = engine.actions
        assert action.kind == ACTION_REPLAN_RATE
        assert action.reason == "cleared"

    def test_cleared_zone_alert_is_ignored(self):
        actuator = _StubActuator()
        engine = RemediationEngine(_StubSLOEngine(), actuator)
        engine.on_alert_cleared(_alert(), 200.0)
        assert actuator.calls == []

    def test_forecast_pump_respects_forecaster_cooldown(self):
        class _Forecaster:
            name = "uplink-goodput"
            link = "uplink"
            cooldown_s = 240.0

            def assess(self, now):
                return Forecast(
                    link="uplink", at=now, horizon_s=60.0,
                    observed_bps=1.0, forecast_bps=0.5, baseline_bps=2.0,
                )

        actuator = _StubActuator()
        engine = RemediationEngine(
            _StubSLOEngine(), actuator, forecasters=(_Forecaster(),)
        )
        engine.poll(100.0)
        engine.poll(200.0)  # cooling
        engine.poll(340.0)
        assert [a.at for a in engine.actions] == [100.0, 340.0]
        assert all(a.reason == "forecast" for a in engine.actions)

    def test_duplicate_rule_names_rejected(self):
        rules = (
            PolicyRule("dup", ACTION_SHIFT_TRAFFIC),
            PolicyRule("dup", ACTION_FALLBACK_LOCAL),
        )
        with pytest.raises(ValueError, match="duplicate"):
            RemediationEngine(_StubSLOEngine(), _StubActuator(), policy=rules)

    def test_action_line_is_canonical(self):
        action = Action(
            at=1.5, kind=ACTION_SHIFT_TRAFFIC, rule="stall-shift",
            slo="uplink-stall", entity="link/uplink", reason="alert",
            detail="hold_local_until=301.5",
        )
        assert action.line() == (
            "t=1.5 ACTION kind=shift-traffic rule=stall-shift "
            "slo=uplink-stall entity=link/uplink reason=alert "
            "detail=[hold_local_until=301.5]"
        )

    def test_counts_and_log_round_trip(self):
        actuator = _StubActuator()
        engine = RemediationEngine(_StubSLOEngine(), actuator)
        engine.on_alert_fired(_alert(), 100.0)
        assert engine.counts() == {
            ACTION_ESCALATE_HEDGING: 1,
            ACTION_FALLBACK_LOCAL: 1,
            ACTION_SHIFT_TRAFFIC: 1,
        }
        assert engine.action_log() == "\n".join(engine.log) + "\n"
        assert RemediationEngine(
            _StubSLOEngine(), _StubActuator()
        ).action_log() == ""


class TestAttachRemediationEndToEnd:
    """The full loop against a seeded chaos campaign: alerts fire,
    actions land, and the action log is byte-deterministic."""

    SEED = 171

    def _cell(self):
        env = Environment.build_custom(
            seed=self.SEED, uplink_bandwidth=2.0e6, access_latency_s=0.030
        )
        attach_tracer(env)
        inject_faults(
            env,
            FaultSchedule.chaos(0.3, 750.0, RngStream(self.SEED * 1000 + 30)),
        )
        controller = OffloadController(
            env,
            photo_backup_app(),
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=1.0, multiplier=2.0
            ),
            degradation=DegradationPolicy(
                outage_aware_backoff=True,
                hedge_after_s=None,
                fallback_local=True,
            ),
        )
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        plane = attach_remediation(env, [controller])
        jobs = [
            Job(
                controller.app,
                input_mb=3.0,
                released_at=60.0 * i,
                deadline=60.0 * i + 500.0,
                job_id=5000 + i,
            )
            for i in range(12)
        ]
        report = controller.run_workload(jobs)
        plane.engine.finalize(float(env.sim.now))
        return plane, report

    def test_alerts_drive_actions(self):
        plane, report = self._cell()
        assert len(plane.engine.alerts) >= 1
        assert len(plane.remediation.actions) >= 1
        assert not report.failures
        # Every alert reached a terminal state by the horizon.
        assert all(a.cleared_at is not None for a in plane.engine.alerts)

    def test_action_log_is_byte_deterministic(self):
        first, _ = self._cell()
        second, _ = self._cell()
        assert first.remediation.action_log() == (
            second.remediation.action_log()
        )
        assert first.remediation.action_log() != ""
        assert first.engine.alert_log() == second.engine.alert_log()


class TestCli:
    def test_run_remediate_writes_an_actions_file(self, tmp_path, capsys):
        from repro.cli import main

        actions = tmp_path / "actions.log"
        code = main([
            "run", "--app", "photo_backup", "--jobs", "2",
            "--remediate", "--actions-out", str(actions),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "alerts fired" in out
        assert "actions applied" in out
        # A calm run remediates nothing, but the artifact still lands.
        assert actions.exists()

    def test_actions_out_requires_remediate(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="remediate"):
            main([
                "run", "--app", "photo_backup", "--jobs", "1",
                "--actions-out", str(tmp_path / "a.log"),
            ])
        with pytest.raises(SystemExit, match="remediate"):
            main([
                "fleet", "--zones", "2", "--ues-per-zone", "1",
                "--window", "600", "--slack", "1200",
                "--actions-out", str(tmp_path / "a.log"),
            ])

    def test_fleet_remediate_acts_under_chaos(self, tmp_path, capsys):
        from repro.cli import main

        actions = tmp_path / "actions.log"
        code = main([
            "fleet", "--zones", "4", "--ues-per-zone", "2",
            "--couple", "pairs", "--window", "600", "--slack", "1200",
            "--chaos", "uplink-outage", "--remediate",
            "--actions-out", str(actions),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "actions applied" in out
        log = actions.read_text(encoding="utf-8")
        assert "ACTION kind=" in log
        assert log.endswith("\n")
