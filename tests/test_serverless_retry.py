"""Tests for failure injection, retries, and pre-warming."""

import pytest

from repro.serverless import (
    FunctionSpec,
    InvocationFailedError,
    InvocationRequest,
    PlatformConfig,
    RetriesExhaustedError,
    RetryPolicy,
    ServerlessPlatform,
    invoke_with_retries,
)
from repro.sim import Simulator
from repro.sim.rng import RngStream


def make_platform(sim, failure_probability=0.0, seed=1, **config):
    defaults = dict(
        keep_alive_s=60.0,
        cold_start_base_s=0.5,
        cold_start_per_package_mb_s=0.0,
        failure_probability=failure_probability,
    )
    defaults.update(config)
    platform = ServerlessPlatform(
        sim, PlatformConfig(**defaults), rng=RngStream(seed)
    )
    platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
    return platform


@pytest.fixture
def sim():
    return Simulator()


class TestFailureInjection:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            PlatformConfig(failure_probability=1.0)
        with pytest.raises(ValueError):
            PlatformConfig(failure_probability=-0.1)

    def test_failures_require_rng(self, sim):
        with pytest.raises(ValueError):
            ServerlessPlatform(
                sim, PlatformConfig(failure_probability=0.5), rng=None
            )

    def test_zero_probability_never_fails(self, sim):
        platform = make_platform(sim, failure_probability=0.0)

        def driver(sim):
            for _ in range(20):
                yield platform.invoke(InvocationRequest("f", 0.24))

        sim.run(until=sim.spawn(driver(sim)))
        assert len(platform.invocations) == 20

    def test_failures_raise_and_bill(self, sim):
        platform = make_platform(sim, failure_probability=0.5, seed=7)
        outcomes = {"ok": 0, "failed": 0}
        billed_on_failures = []

        def driver(sim):
            for _ in range(40):
                try:
                    yield platform.invoke(InvocationRequest("f", 2.4))
                except InvocationFailedError as error:
                    outcomes["failed"] += 1
                    billed_on_failures.append(error.billed_usd)
                else:
                    outcomes["ok"] += 1

        sim.run(until=sim.spawn(driver(sim)))
        assert outcomes["failed"] > 5
        assert outcomes["ok"] > 5
        assert all(b > 0 for b in billed_on_failures)
        # The platform bill includes the failed attempts.
        successful = sum(i.cost for i in platform.invocations)
        assert platform.total_cost > successful

    def test_sandbox_survives_failure(self, sim):
        """A failed attempt keeps its instance warm for the next call."""
        platform = make_platform(sim, failure_probability=0.5, seed=3)

        def driver(sim):
            for _ in range(10):
                try:
                    yield platform.invoke(InvocationRequest("f", 2.4))
                except InvocationFailedError:
                    pass

        sim.run(until=sim.spawn(driver(sim)))
        # Only the very first attempt should have cold-started.
        assert sum(1 for i in platform.invocations if i.cold_start) <= 1
        assert platform.warm_pool_size("f") == 1

    def test_failure_metric(self, sim):
        platform = make_platform(sim, failure_probability=0.4, seed=5)

        def driver(sim):
            for _ in range(25):
                try:
                    yield platform.invoke(InvocationRequest("f", 0.24))
                except InvocationFailedError:
                    pass

        sim.run(until=sim.spawn(driver(sim)))
        assert platform.metrics.counter("faas.failures").value > 0


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_backoff_schedule(self):
        policy = RetryPolicy(max_attempts=4, base_delay_s=2.0, multiplier=3.0)
        assert policy.delay_before_attempt(0) == 0.0
        assert policy.delay_before_attempt(1) == 2.0
        assert policy.delay_before_attempt(2) == 6.0
        assert policy.delay_before_attempt(3) == 18.0

    def test_jitter_bounds(self):
        policy = RetryPolicy(base_delay_s=10.0, jitter=0.3)
        rng = RngStream(1)
        for _ in range(20):
            delay = policy.delay_before_attempt(1, rng)
            assert 7.0 <= delay <= 13.0


class TestInvokeWithRetries:
    def test_success_without_failures(self, sim):
        platform = make_platform(sim)
        outcome = sim.run(
            until=invoke_with_retries(
                platform, InvocationRequest("f", 2.4), RetryPolicy()
            )
        )
        assert outcome.attempts == 1
        assert outcome.wasted_usd == 0.0
        assert outcome.backoff_s == 0.0
        assert outcome.total_cost == outcome.invocation.cost

    def test_retries_until_success(self, sim):
        platform = make_platform(sim, failure_probability=0.6, seed=11)
        policy = RetryPolicy(max_attempts=20, base_delay_s=0.1)
        outcome = sim.run(
            until=invoke_with_retries(platform, InvocationRequest("f", 2.4), policy)
        )
        assert outcome.attempts >= 2
        assert outcome.wasted_usd > 0
        assert outcome.backoff_s > 0
        assert outcome.total_cost > outcome.invocation.cost

    def test_exhaustion_raises_with_accounting(self, sim):
        platform = make_platform(sim, failure_probability=0.95, seed=13)
        policy = RetryPolicy(max_attempts=3, base_delay_s=0.1)
        process = invoke_with_retries(
            platform, InvocationRequest("f", 2.4), policy
        )
        with pytest.raises(RetriesExhaustedError) as excinfo:
            sim.run(until=process)
        assert excinfo.value.attempts == 3
        assert excinfo.value.wasted_usd > 0


class TestPrewarming:
    def test_prewarm_avoids_cold_start(self, sim):
        platform = make_platform(sim)

        def driver(sim):
            yield platform.prewarm("f", 2)
            record = yield platform.invoke(InvocationRequest("f", 2.4))
            return record

        record = sim.run(until=sim.spawn(driver(sim)))
        assert not record.cold_start
        assert record.queue_delay == 0.0

    def test_prewarmed_instances_never_expire(self, sim):
        platform = make_platform(sim, keep_alive_s=5.0)

        def driver(sim):
            yield platform.prewarm("f", 1)
            yield sim.timeout(1000.0)  # far past keep-alive
            return (yield platform.invoke(InvocationRequest("f", 2.4)))

        record = sim.run(until=sim.spawn(driver(sim)))
        assert not record.cold_start

    def test_release_restores_expiry(self, sim):
        platform = make_platform(sim, keep_alive_s=5.0)

        def driver(sim):
            yield platform.prewarm("f", 1)
            platform.release_prewarm("f")
            yield sim.timeout(1000.0)
            return (yield platform.invoke(InvocationRequest("f", 2.4)))

        record = sim.run(until=sim.spawn(driver(sim)))
        assert record.cold_start  # pool expired after release

    def test_provisioned_billing_accrues(self, sim):
        platform = make_platform(sim)

        def driver(sim):
            yield platform.prewarm("f", 2)
            yield sim.timeout(3600.0)

        sim.run(until=sim.spawn(driver(sim)))
        sim.run()
        cost = platform.provisioned_cost("f")
        gb = 1769 / 1024.0
        expected = 2 * gb * 3600.0 * platform.config.billing.provisioned_price_per_gb_second
        assert cost == pytest.approx(expected, rel=1e-6)
        assert platform.total_cost >= cost

    def test_billing_stops_after_release(self, sim):
        platform = make_platform(sim)

        def driver(sim):
            yield platform.prewarm("f", 1)
            yield sim.timeout(100.0)
            platform.release_prewarm("f")
            yield sim.timeout(1000.0)

        sim.run(until=sim.spawn(driver(sim)))
        sim.run()
        gb = 1769 / 1024.0
        expected = gb * 100.0 * platform.config.billing.provisioned_price_per_gb_second
        assert platform.provisioned_cost("f") == pytest.approx(expected, rel=1e-6)

    def test_prewarm_count_and_validation(self, sim):
        platform = make_platform(sim)
        with pytest.raises(ValueError):
            platform.prewarm("f", 0)

        def driver(sim):
            yield platform.prewarm("f", 3)

        sim.run(until=sim.spawn(driver(sim)))
        assert platform.prewarmed_count("f") == 3

    def test_prewarm_respects_concurrency_limit(self, sim):
        platform = ServerlessPlatform(sim, PlatformConfig(default_concurrency=2))
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        with pytest.raises(ValueError):
            platform.prewarm("f", 3)

    def test_prewarm_serves_waiting_queue(self, sim):
        platform = ServerlessPlatform(
            sim,
            PlatformConfig(
                default_concurrency=1, cold_start_base_s=0.5,
                cold_start_per_package_mb_s=0.0,
            ),
        )
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        # Fill the single slot, then queue another request... but raise
        # the limit first via redeploy with explicit concurrency.
        platform.deploy(
            FunctionSpec("f", memory_mb=1769, package_mb=0, concurrency_limit=3)
        )
        first = platform.invoke(InvocationRequest("f", 24.0))  # 10 s busy
        second = platform.invoke(InvocationRequest("f", 24.0))
        third = platform.invoke(InvocationRequest("f", 2.4))

        def helper(sim):
            yield sim.timeout(1.0)
            yield platform.prewarm("f", 1)

        sim.spawn(helper(sim))

        def join(sim):
            results = yield sim.all_of([first, second, third])
            return sorted(r.finished_at for r in results.values())

        finishes = sim.run(until=sim.spawn(join(sim)))
        assert len(finishes) == 3
