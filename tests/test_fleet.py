"""Tests for the multi-device fleet layer."""

import pytest

from repro import Job, photo_backup_app
from repro.apps import nightly_analytics_app
from repro.core.scheduler import DeadlineBatcher
from repro.fleet import FleetController, FleetEnvironment
from repro.serverless.platform import PlatformConfig


def make_fleet(n=4, seed=1, connectivity="4g", app=None, **controller_kwargs):
    env = FleetEnvironment.build(n_devices=n, seed=seed, connectivity=connectivity)
    fleet = FleetController(env, app or photo_backup_app(), **controller_kwargs)
    fleet.profile_offline()
    fleet.plan(input_mb=3.0)
    return env, fleet


def staggered_jobs(fleet, n_devices, per_device=2, spacing=45.0, slack=3600.0):
    return {
        device: [
            Job(
                fleet.app,
                input_mb=3.0,
                released_at=spacing * (device + n_devices * k),
                deadline=spacing * (device + n_devices * k) + slack,
            )
            for k in range(per_device)
        ]
        for device in range(n_devices)
    }


class TestFleetEnvironment:
    def test_build_shapes(self):
        env = FleetEnvironment.build(n_devices=3, seed=0)
        assert len(env) == 3
        names = {device.ue.spec.name for device in env.devices}
        assert names == {"ue0", "ue1", "ue2"}
        # One shared platform and simulator.
        assert all(d.platform is env.platform for d in env.devices)
        assert all(d.sim is env.sim for d in env.devices)

    def test_mixed_connectivity_cycles(self):
        env = FleetEnvironment.build(
            n_devices=4, seed=0, connectivity=["wifi", "3g"]
        )
        rates = [d.uplink.bottleneck_rate() for d in env.devices]
        assert rates[0] == rates[2] > rates[1] == rates[3]

    def test_validation(self):
        with pytest.raises(ValueError):
            FleetEnvironment.build(n_devices=0)

    def test_custom_device_spec_preserved(self):
        from repro.device.ue import DeviceSpec

        spec = DeviceSpec(
            cycles_per_second=2.0e9,
            frequency_steps=(0.5, 1.0),
            battery_capacity_j=1234.0,
        )
        env = FleetEnvironment.build(n_devices=2, seed=0, device=spec)
        for index, device in enumerate(env.devices):
            assert device.ue.spec.name == f"ue{index}"
            assert device.ue.spec.cycles_per_second == 2.0e9
            assert device.ue.spec.frequency_steps == (0.5, 1.0)
            assert device.ue.spec.battery_capacity_j == 1234.0

    def test_storage_shared(self):
        env = FleetEnvironment.build(n_devices=2, seed=0, with_storage=True)
        assert env.devices[0].storage is env.devices[1].storage


class TestFleetController:
    def test_all_jobs_complete(self):
        env, fleet = make_fleet(n=4)
        report = fleet.run(staggered_jobs(fleet, 4))
        assert report.jobs_completed == 8
        assert report.failures == 0
        assert report.deadline_miss_rate == 0.0
        assert set(report.per_device) == {0, 1, 2, 3}

    def test_shared_demand_model(self):
        _env, fleet = make_fleet(n=3)
        models = {id(c.demand) for c in fleet.controllers}
        assert len(models) == 1

    def test_shared_functions_share_warm_pools(self):
        """Device B's invocation right after device A's lands warm."""
        env = FleetEnvironment.build(
            n_devices=2, seed=2,
            platform_config=PlatformConfig(keep_alive_s=600.0),
        )
        fleet = FleetController(env, photo_backup_app())
        fleet.profile_offline()
        fleet.plan(input_mb=3.0)
        jobs = {
            0: [Job(fleet.app, input_mb=3.0, released_at=0.0, deadline=3600.0)],
            1: [Job(fleet.app, input_mb=3.0, released_at=120.0, deadline=3720.0)],
        }
        fleet.run(jobs)
        # The second device's invocations all reuse the first's pools.
        per_function = {}
        for record in env.platform.invocations:
            per_function.setdefault(record.request.function, []).append(record)
        for records in per_function.values():
            later = [r for r in records if r.submitted_at > 60.0]
            assert all(not r.cold_start for r in later)

    def test_unknown_device_rejected(self):
        _env, fleet = make_fleet(n=2)
        with pytest.raises(IndexError):
            fleet.run({5: [Job(fleet.app)]})

    def test_per_device_energy_separate(self):
        env, fleet = make_fleet(n=2)
        report = fleet.run(staggered_jobs(fleet, 2))
        for device_index, device_report in report.per_device.items():
            assert device_report.total_ue_energy_j > 0
        # Battery drain happened on each device independently.
        assert env.devices[0].ue.battery_level_j < env.devices[0].ue.spec.battery_capacity_j
        assert env.devices[1].ue.battery_level_j < env.devices[1].ue.spec.battery_capacity_j

    def test_scheduler_factory_applied(self):
        _env, fleet = make_fleet(
            n=2, scheduler_factory=lambda: DeadlineBatcher(window_s=100.0)
        )
        schedulers = [c.scheduler for c in fleet.controllers]
        assert all(isinstance(s, DeadlineBatcher) for s in schedulers)
        assert schedulers[0] is not schedulers[1]

    def test_empty_report_stats(self):
        # The sharded path makes zero-job shards reachable, so empty
        # aggregates must be 0.0, not NaN (which canonical JSON rejects).
        from repro.fleet import FleetReport

        report = FleetReport()
        assert report.jobs_completed == 0
        assert report.deadline_miss_rate == 0.0
        assert report.mean_response_s == 0.0

    def test_all_failed_report_stats(self):
        from repro.core.controller import ControllerReport, JobFailure
        from repro.fleet import FleetReport

        failed = ControllerReport(
            failures=[JobFailure(Job(photo_backup_app()), 1.0, RuntimeError())]
        )
        report = FleetReport(per_device={0: failed})
        assert report.jobs_completed == 0
        assert report.mean_response_s == 0.0
        assert report.deadline_miss_rate == 1.0


class TestFleetReportMerge:
    """Merge arithmetic: merging then aggregating must equal aggregating
    over the concatenated job set — the sharded runner's contract."""

    @staticmethod
    def device_report(responses, misses=0, failures=0, energy=1.0, cost=0.1):
        from repro.apps.jobs import JobResult
        from repro.core.controller import ControllerReport, JobFailure

        app = photo_backup_app()
        results = []
        for k, response in enumerate(responses):
            released = 10.0 * k
            deadline = released + (0.0 if k < misses else 2 * response)
            results.append(
                JobResult(
                    job=Job(app, released_at=released, deadline=deadline),
                    started_at=released,
                    finished_at=released + response,
                    ue_energy_j=energy,
                    cloud_cost_usd=cost,
                )
            )
        report = ControllerReport(results=results)
        for _ in range(failures):
            report.failures.append(
                JobFailure(Job(app), 1.0, RuntimeError("boom"))
            )
        return report

    def make_reports(self):
        from repro.fleet import FleetReport

        a = FleetReport(per_device={
            0: self.device_report([3.0, 5.0], misses=1),
            1: self.device_report([7.0], failures=1),
        })
        b = FleetReport(per_device={2: self.device_report([], failures=2)})
        c = FleetReport(per_device={
            3: self.device_report([11.0, 13.0, 17.0], energy=2.5, cost=0.4),
        })
        return a, b, c

    def test_merge_equals_concatenation(self):
        from repro.fleet import FleetReport

        a, b, c = self.make_reports()
        merged = FleetReport.merge([a, b, c])
        assert set(merged.per_device) == {0, 1, 2, 3}

        all_results = [
            r
            for part in (a, b, c)
            for report in part.per_device.values()
            for r in report.results
        ]
        all_failures = sum(part.failures for part in (a, b, c))
        assert merged.jobs_completed == len(all_results)
        assert merged.failures == all_failures
        assert merged.mean_response_s == pytest.approx(
            sum(r.response_time for r in all_results) / len(all_results)
        )
        missed = sum(1 for r in all_results if not r.met_deadline)
        assert merged.deadline_miss_rate == pytest.approx(
            (missed + all_failures) / (len(all_results) + all_failures)
        )
        assert merged.total_ue_energy_j == pytest.approx(
            sum(r.ue_energy_j for r in all_results)
        )
        assert merged.total_cloud_cost_usd == pytest.approx(
            sum(r.cloud_cost_usd for r in all_results)
        )

    def test_merge_associative_with_empty_identity(self):
        from repro.fleet import FleetReport

        a, b, c = self.make_reports()
        left = FleetReport.merge([FleetReport.merge([a, b]), c])
        right = FleetReport.merge([a, FleetReport.merge([b, c])])
        with_identity = FleetReport.merge([FleetReport(), a, b, c])
        assert left.per_device == right.per_device == with_identity.per_device
        assert FleetReport.merge([]).per_device == {}

    def test_merge_rejects_duplicate_device(self):
        from repro.fleet import FleetReport

        a, _b, _c = self.make_reports()
        with pytest.raises(ValueError, match="more than one report"):
            FleetReport.merge([a, a])


class TestFleetEconomics:
    def test_density_reduces_cold_fraction(self):
        """More devices on the same functions => warmer pools."""
        def cold_fraction(n_devices):
            env = FleetEnvironment.build(
                n_devices=n_devices, seed=3,
                platform_config=PlatformConfig(keep_alive_s=150.0),
            )
            fleet = FleetController(env, nightly_analytics_app())
            fleet.profile_offline()
            fleet.plan(input_mb=3.0)
            # One job per device, spread over a fixed 2-hour window: more
            # devices = shorter gaps between invocations.
            window = 7200.0
            jobs = {
                i: [Job(fleet.app, input_mb=3.0,
                        released_at=window * i / n_devices,
                        deadline=window * i / n_devices + 3600.0)]
                for i in range(n_devices)
            }
            fleet.run(jobs)
            return env.platform.cold_start_fraction()

        sparse = cold_fraction(6)
        dense = cold_fraction(72)
        assert dense < sparse
