"""The compiled kernel core: C types, selection logic, byte-equality.

Everything here skips cleanly when ``repro.sim._ckernel`` is not built
(``tools/build_core.py`` builds it); the pure-Python core is the gate.
The differential dispatch-order fuzzing lives in
``test_kernel_fastlane.py`` — this file covers the C types' contracts
and the ``REPRO_SIM_CORE`` selection machinery.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.sim import Simulator
from repro.sim._core import ACTIVE, COMPILED_AVAILABLE, CKERNEL
from repro.sim.events import EventAlreadyTriggered

REPO_ROOT = Path(__file__).resolve().parent.parent

needs_compiled = pytest.mark.skipif(
    not COMPILED_AVAILABLE, reason="compiled core not built"
)


def _run_env(core: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    env["REPRO_SIM_CORE"] = core
    return env


@needs_compiled
class TestFastLane:
    def test_fifo_order(self):
        lane = CKERNEL.FastLane()
        for item in ("a", "b", "c"):
            lane.append(item)
        assert [lane.popleft() for _ in range(3)] == ["a", "b", "c"]

    def test_truthiness_and_length(self):
        lane = CKERNEL.FastLane()
        assert not lane and len(lane) == 0
        lane.append(1)
        assert lane and len(lane) == 1

    def test_pop_from_empty_raises(self):
        with pytest.raises(IndexError):
            CKERNEL.FastLane().popleft()

    def test_growth_past_initial_capacity(self):
        lane = CKERNEL.FastLane()
        total = 1000  # several doublings past the initial ring
        for index in range(total):
            lane.append(index)
        assert len(lane) == total
        assert [lane.popleft() for _ in range(total)] == list(range(total))

    def test_interleaved_wraparound(self):
        lane = CKERNEL.FastLane()
        out = []
        for index in range(500):
            lane.append(index)
            lane.append(index + 1000)
            out.append(lane.popleft())
        while lane:
            out.append(lane.popleft())
        reference = []
        from collections import deque

        ref = deque()
        for index in range(500):
            ref.append(index)
            ref.append(index + 1000)
            reference.append(ref.popleft())
        reference.extend(ref)
        assert out == reference


@needs_compiled
class TestCompiledEvent:
    def _sim(self):
        sim = Simulator()
        sim._fast = CKERNEL.FastLane()
        return sim

    def test_succeed_then_succeed_raises(self):
        event = CKERNEL.Event(self._sim())
        event.succeed("v")
        with pytest.raises(EventAlreadyTriggered):
            event.succeed("again")

    def test_fail_requires_exception_instance(self):
        event = CKERNEL.Event(self._sim())
        with pytest.raises(TypeError, match="exception instance"):
            event.fail("not an exception")

    def test_value_unavailable_while_pending(self):
        event = CKERNEL.Event(self._sim())
        assert not event.triggered
        with pytest.raises(AttributeError, match="not yet available"):
            event.value

    def test_lifecycle_flags_match_pure_semantics(self):
        sim = self._sim()
        event = CKERNEL.Event(sim)
        assert (event.triggered, event.processed, event.ok) == (
            False,
            False,
            True,
        )
        event.succeed(41)
        assert event.triggered and not event.processed
        sim.run()
        assert event.processed and event.value == 41

    def test_failure_delivers_exception_to_run(self):
        sim = self._sim()

        def proc(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("boom")

        handle = sim.spawn(proc(sim))
        with pytest.raises(RuntimeError, match="boom"):
            sim.run(until=handle)

    def test_repr_states(self):
        sim = self._sim()
        event = CKERNEL.Event(sim)
        assert "pending" in repr(event)
        event.succeed()
        assert "ok" in repr(event)
        failed = CKERNEL.Event(sim)
        failed.fail(ValueError("x"))
        assert "failed" in repr(failed)


@needs_compiled
class TestCompiledLoop:
    def _compiled_sim(self):
        sim = Simulator()
        sim._fast = CKERNEL.FastLane()
        return sim

    def test_meter_counters_match_pure_loop(self):
        def drive(sim):
            def proc(sim):
                for _ in range(3):
                    yield sim.timeout(0.5)
                    yield sim.timeout(0.0)

            sim.spawn(proc(sim))
            sim.run()
            return sim.meter.snapshot()

        assert drive(self._compiled_sim()) == drive(Simulator())

    def test_deadlock_raises_simulation_error(self):
        from repro.sim import SimulationError

        sim = self._compiled_sim()
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=sim.event())

    def test_backwards_horizon_rejected(self):
        from repro.sim import SimulationError

        sim = self._compiled_sim()
        sim.timeout(1.0)
        sim.run()
        with pytest.raises(SimulationError, match="cannot run until"):
            sim.run(until=0.5)

    def test_horizon_advances_clock_exactly(self):
        sim = self._compiled_sim()
        sim.timeout(10.0)
        assert sim.run(until=2.5) is None
        assert sim.now == 2.5


class TestCoreSelection:
    def test_active_core_is_consistent(self):
        assert ACTIVE in ("pure", "compiled")
        if ACTIVE == "compiled":
            assert COMPILED_AVAILABLE

    def test_unknown_core_warns_and_falls_back(self):
        probe = subprocess.run(
            [
                sys.executable,
                "-W",
                "error::RuntimeWarning",
                "-c",
                "import repro.sim._core",
            ],
            env=_run_env("turbo"),
            capture_output=True,
            text=True,
        )
        assert probe.returncode != 0
        assert "not 'pure' or 'compiled'" in probe.stderr

    @needs_compiled
    def test_compiled_mode_selects_c_types(self):
        probe = subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.sim import Simulator\n"
                "from repro.sim.events import Event\n"
                "from repro.sim._core import ACTIVE\n"
                "sim = Simulator()\n"
                "print(ACTIVE, Event.__module__, type(sim._fast).__name__)\n",
            ],
            env=_run_env("compiled"),
            capture_output=True,
            text=True,
        )
        assert probe.returncode == 0, probe.stderr
        assert probe.stdout.split() == [
            "compiled",
            "repro.sim._ckernel",
            "FastLane",
        ]


@needs_compiled
def test_repro_run_documents_byte_identical_across_cores(tmp_path):
    """The CLI smoke the CI compiled leg mirrors with ``cmp``."""
    outputs = {}
    for core in ("pure", "compiled"):
        out = tmp_path / f"trace-{core}.json"
        proc = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "run",
                "--app",
                "photo_backup",
                "--jobs",
                "2",
                "--trace",
                str(out),
            ],
            env=_run_env(core),
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr
        outputs[core] = out.read_bytes()
    assert outputs["pure"] == outputs["compiled"]
    json.loads(outputs["pure"])  # stays a valid trace document
