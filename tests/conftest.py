"""Shared test configuration.

Hypothesis is derandomized so the suite is fully deterministic: property
tests explore the same example sequence on every run, which keeps CI
results reproducible — the same discipline the simulators themselves
follow.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")
