"""Shared test configuration.

Hypothesis is derandomized so the suite is fully deterministic: property
tests explore the same example sequence on every run, which keeps CI
results reproducible — the same discipline the simulators themselves
follow.
"""

import os

from hypothesis import HealthCheck, settings

# Keep the suite hermetic: no test should append to a real run ledger
# unless it opts in with an explicit --ledger path (which overrides this).
os.environ.setdefault("REPRO_LEDGER", "")

settings.register_profile(
    "repro",
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
    deadline=None,
)
settings.load_profile("repro")
