"""Tests for metric collectors and table rendering."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics import (
    Counter,
    Gauge,
    MetricRegistry,
    Summary,
    Table,
    TimeWeightedAverage,
    render_table,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0.0

    def test_increments(self):
        counter = Counter("c")
        counter.increment()
        counter.increment(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, bad):
        counter = Counter("c")
        with pytest.raises(ValueError, match="finite"):
            counter.increment(bad)
        assert counter.value == 0.0  # rejected before mutation


class TestGauge:
    def test_set_and_add(self):
        gauge = Gauge("g", initial=10.0)
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, bad):
        gauge = Gauge("g", initial=1.0)
        with pytest.raises(ValueError, match="finite"):
            gauge.set(bad)
        with pytest.raises(ValueError, match="finite"):
            gauge.add(bad)
        assert gauge.value == 1.0


class TestSummary:
    def test_empty_stats_are_nan(self):
        summary = Summary("s")
        assert math.isnan(summary.mean)
        assert math.isnan(summary.quantile(0.5))
        assert math.isnan(summary.stddev)

    def test_basic_stats(self):
        summary = Summary("s")
        summary.observe_many([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.total == 10.0

    def test_median_interpolation(self):
        summary = Summary("s")
        summary.observe_many([1.0, 2.0, 3.0, 10.0])
        assert summary.quantile(0.5) == 2.5

    def test_extreme_quantiles(self):
        summary = Summary("s")
        summary.observe_many([5.0, 1.0, 3.0])
        assert summary.quantile(0.0) == 1.0
        assert summary.quantile(1.0) == 5.0

    def test_percentile_alias(self):
        summary = Summary("s")
        summary.observe_many(range(101))
        assert summary.percentile(99) == 99.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            Summary("s").quantile(1.5)

    @pytest.mark.parametrize("bad", [math.nan, math.inf, -math.inf])
    def test_rejects_non_finite(self, bad):
        summary = Summary("s")
        summary.observe(1.0)
        with pytest.raises(ValueError, match="finite"):
            summary.observe(bad)
        with pytest.raises(ValueError, match="finite"):
            summary.observe_many([2.0, bad])
        # The bad value never entered; the batch stopped at its offender.
        assert summary.count == 2
        assert summary.total == 3.0

    def test_single_sample(self):
        summary = Summary("s")
        summary.observe(7.0)
        assert summary.quantile(0.3) == 7.0
        assert summary.stddev == 0.0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_quantiles_bounded_by_extremes(self, values):
        summary = Summary("s")
        summary.observe_many(values)
        for q in (0.0, 0.25, 0.5, 0.9, 1.0):
            quantile = summary.quantile(q)
            assert min(values) - 1e-9 <= quantile <= max(values) + 1e-9

    @given(st.lists(st.floats(min_value=0, max_value=1e3), min_size=2, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_quantile_monotone_in_q(self, values):
        summary = Summary("s")
        summary.observe_many(values)
        quantiles = [summary.quantile(q) for q in (0.1, 0.3, 0.5, 0.7, 0.9)]
        assert all(a <= b + 1e-9 for a, b in zip(quantiles, quantiles[1:]))


class TestTimeWeightedAverage:
    def test_constant_signal(self):
        twa = TimeWeightedAverage("t", initial=5.0)
        twa.update(10.0, 5.0)
        assert twa.average() == 5.0

    def test_step_signal(self):
        twa = TimeWeightedAverage("t", initial=0.0)
        twa.update(5.0, 10.0)  # 0 for 5s
        twa.update(10.0, 0.0)  # 10 for 5s
        assert twa.average() == 5.0

    def test_average_extends_to_now(self):
        twa = TimeWeightedAverage("t", initial=2.0)
        twa.update(2.0, 4.0)
        assert twa.average(now=4.0) == pytest.approx(3.0)

    def test_time_backwards_rejected(self):
        twa = TimeWeightedAverage("t")
        twa.update(5.0, 1.0)
        with pytest.raises(ValueError):
            twa.update(4.0, 1.0)

    def test_no_elapsed_returns_current(self):
        twa = TimeWeightedAverage("t", initial=7.0)
        assert twa.average() == 7.0


class TestMetricRegistry:
    def test_same_name_same_object(self):
        registry = MetricRegistry()
        assert registry.counter("x") is registry.counter("x")
        assert registry.summary("y") is registry.summary("y")

    def test_snapshot_flattens(self):
        registry = MetricRegistry()
        registry.counter("jobs").increment(3)
        registry.gauge("level").set(0.5)
        registry.summary("lat").observe_many([1.0, 2.0])
        snap = registry.snapshot()
        assert snap["jobs"] == 3
        assert snap["level"] == 0.5
        assert snap["lat.count"] == 2
        assert snap["lat.mean"] == 1.5

    def test_names_sorted(self):
        registry = MetricRegistry()
        registry.counter("z")
        registry.gauge("a")
        assert registry.names() == ["a", "z"]


class TestTable:
    def test_positional_rows(self):
        table = Table(["name", "value"])
        table.add_row("a", 1.5)
        rendered = table.render()
        assert "name" in rendered and "1.500" in rendered

    def test_named_rows(self):
        table = Table(["x", "y"])
        table.add_row(y=2, x=1)
        assert table.rows == [[1, 2]]

    def test_mixed_rows_rejected(self):
        table = Table(["x"])
        with pytest.raises(ValueError):
            table.add_row(1, x=1)

    def test_unknown_column_rejected(self):
        table = Table(["x"])
        with pytest.raises(KeyError):
            table.add_row(z=1)

    def test_wrong_arity_rejected(self):
        table = Table(["x", "y"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_column_extraction(self):
        table = Table(["x", "y"])
        table.add_row(1, "a")
        table.add_row(2, "b")
        assert table.column("y") == ["a", "b"]

    def test_special_values(self):
        table = Table(["v"])
        for value in (None, True, False, math.nan, math.inf, 1e-9):
            table.add_row(value)
        rendered = table.render()
        for expected in ("-", "yes", "no", "nan", "inf"):
            assert expected in rendered

    def test_title_rendered(self):
        table = Table(["x"], title="T9: results")
        table.add_row(1)
        assert table.render().startswith("T9: results")

    def test_render_table_helper(self):
        out = render_table(["a"], [[1], [2]])
        assert out.count("\n") == 3  # header, rule, two rows

    def test_empty_columns_rejected(self):
        with pytest.raises(ValueError):
            Table([])

    def test_to_csv(self):
        table = Table(["name", "value"])
        table.add_row("a,b", 1.5)
        table.add_row(None, 2)
        csv_text = table.to_csv()
        lines = csv_text.strip().split("\n")
        assert lines[0] == "name,value"
        assert lines[1] == '"a,b",1.5'
        assert lines[2] == ",2"

    def test_to_records(self):
        table = Table(["x", "y"])
        table.add_row(1, "a")
        assert table.to_records() == [{"x": 1, "y": "a"}]

    def test_save_csv_roundtrip(self, tmp_path):
        table = Table(["x"])
        table.add_row(42)
        path = tmp_path / "out.csv"
        table.save_csv(path)
        assert path.read_text() == "x\n42\n"
