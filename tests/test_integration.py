"""Cross-module integration scenarios.

Each test here exercises the full stack (controller + substrates) and
asserts the qualitative *shape* the benchmarks later quantify.
"""

import pytest

from repro import (
    DeadlineBatcher,
    EagerScheduler,
    Environment,
    Job,
    ObjectiveWeights,
    OffloadController,
    ml_training_app,
    photo_backup_app,
)
from repro.baselines import full_offload_controller, local_only_controller
from repro.device.ue import DeviceSpec
from repro.serverless.platform import PlatformConfig


def run_policy(make_controller, app_factory, seed, n_jobs=5, input_mb=3.0,
               slack=3600.0, spacing=60.0):
    env = Environment.build(seed=seed, connectivity="4g")
    controller = make_controller(env, app_factory())
    if controller.partition is None:
        controller.profile_offline()
        controller.plan(input_mb=input_mb)
    jobs = [
        Job(
            controller.app,
            input_mb=input_mb,
            released_at=spacing * i,
            deadline=spacing * i + slack,
        )
        for i in range(n_jobs)
    ]
    return controller.run_workload(jobs)


class TestOffloadingWins:
    def test_optimised_beats_local_on_heavy_app(self):
        """ML training on a 4G uplink: the optimiser must beat local-only
        on the combined objective (energy + cost at tiny latency weight)."""
        optimised = run_policy(
            lambda env, app: OffloadController(env, app),
            ml_training_app,
            seed=10,
        )
        local = run_policy(
            local_only_controller, ml_training_app, seed=10
        )
        assert optimised.total_ue_energy_j < local.total_ue_energy_j
        assert optimised.deadline_miss_rate == 0.0

    def test_optimised_never_worse_than_both_trivial_policies(self):
        """On every app, the planner's objective is <= min(local, full)."""
        weights = ObjectiveWeights.non_time_critical()

        def objective(report):
            return weights.combine(
                sum(r.response_time for r in report.results),
                report.total_ue_energy_j,
                report.total_cloud_cost_usd,
            )

        for app_factory in (photo_backup_app, ml_training_app):
            planned = objective(
                run_policy(
                    lambda env, app: OffloadController(env, app, weights=weights),
                    app_factory,
                    seed=11,
                )
            )
            local = objective(run_policy(local_only_controller, app_factory, 11))
            full = objective(run_policy(full_offload_controller, app_factory, 11))
            assert planned <= min(local, full) * 1.10  # small execution noise


class TestBandwidthCrossover:
    def test_low_bandwidth_prefers_local(self):
        env = Environment.build(seed=3, connectivity="3g")
        # Throttle the uplink brutally via a custom profile: reuse 3g but
        # the decision must follow the *measured* bottleneck rate.
        app = photo_backup_app()
        controller = OffloadController(
            env, app, weights=ObjectiveWeights.interactive()
        )
        controller.profile_offline()
        slow_ctx = controller.build_context(4.0)
        assert slow_ctx.uplink_bps < 1e6 or True  # context reflects env

    def test_offload_count_monotone_in_bandwidth(self):
        counts = []
        for connectivity in ("3g", "4g", "5g"):
            env = Environment.build(seed=4, connectivity=connectivity)
            controller = OffloadController(env, photo_backup_app())
            controller.profile_offline()
            partition = controller.plan(input_mb=4.0)
            counts.append(len(partition.cloud))
        assert counts == sorted(counts)


class TestDelayTolerantScheduling:
    def test_batching_reduces_cold_starts(self):
        def run(scheduler, seed):
            env = Environment.build(
                seed=seed,
                platform_config=PlatformConfig(keep_alive_s=120.0),
            )
            controller = OffloadController(
                env, photo_backup_app(), scheduler=scheduler
            )
            controller.profile_offline()
            controller.plan(input_mb=3.0)
            jobs = [
                Job(
                    controller.app,
                    input_mb=3.0,
                    released_at=200.0 * i,
                    deadline=200.0 * i + 7200.0,
                )
                for i in range(8)
            ]
            controller.run_workload(jobs)
            return env.platform.cold_start_fraction()

        eager_fraction = run(EagerScheduler(), seed=5)
        batched_fraction = run(DeadlineBatcher(window_s=900.0), seed=5)
        assert batched_fraction <= eager_fraction

    def test_batcher_meets_loose_deadlines(self):
        report = run_policy(
            lambda env, app: OffloadController(
                env, app, scheduler=DeadlineBatcher(window_s=600.0)
            ),
            photo_backup_app,
            seed=6,
            slack=7200.0,
        )
        assert report.deadline_miss_rate == 0.0
        assert report.jobs_completed == 5


class TestEnergyAccounting:
    def test_battery_drain_matches_reported_energy(self):
        env = Environment.build(seed=7)
        controller = OffloadController(env, photo_backup_app())
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        start_level = env.ue.battery_level_j
        report = controller.run_workload([Job(controller.app, input_mb=3.0)])
        drained = start_level - env.ue.battery_level_j
        reported = report.results[0].ue_energy_j
        # Battery drain excludes idle (idle is an accounting-only term in
        # the report), so drained <= reported, and the compute+radio part
        # must match.
        assert drained <= reported + 1e-6
        assert drained > 0

    def test_platform_bill_matches_job_costs(self):
        env = Environment.build(seed=8)
        controller = OffloadController(env, photo_backup_app())
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        jobs = [
            Job(controller.app, input_mb=3.0, released_at=10.0 * i)
            for i in range(4)
        ]
        report = controller.run_workload(jobs)
        assert env.platform.total_cost == pytest.approx(
            report.total_cloud_cost_usd
        )


class TestDeterminism:
    def test_same_seed_same_outcome(self):
        def once():
            report = run_policy(
                lambda env, app: OffloadController(env, app),
                photo_backup_app,
                seed=99,
                n_jobs=4,
            )
            return [
                (r.started_at, r.finished_at, r.ue_energy_j, r.cloud_cost_usd)
                for r in report.results
            ]

        assert once() == once()

    def test_different_seed_different_noise(self):
        def once(seed):
            report = run_policy(
                lambda env, app: OffloadController(env, app),
                photo_backup_app,
                seed=seed,
                n_jobs=2,
            )
            return [r.finished_at for r in report.results]

        assert once(1) != once(2)


class TestWeakDevice:
    def test_weak_device_offloads_more(self):
        def cloud_count(cycles_per_second):
            env = Environment.build(
                seed=12, device=DeviceSpec(cycles_per_second=cycles_per_second)
            )
            controller = OffloadController(env, photo_backup_app())
            controller.profile_offline()
            return len(controller.plan(input_mb=4.0).cloud)

        assert cloud_count(0.4e9) >= cloud_count(2.4e9)
