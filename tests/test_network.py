"""Tests for network links, paths, and connectivity profiles."""

import pytest

from repro.network import (
    CONNECTIVITY_PROFILES,
    Link,
    NetworkPath,
    cloud_path,
    edge_path,
    profile,
)
from repro.sim import Simulator
from repro.traces import StepBandwidth


@pytest.fixture
def sim():
    return Simulator()


class TestLink:
    def test_transfer_duration(self, sim):
        link = Link(sim, bandwidth=100.0, latency_s=1.0)
        process = link.transfer(500.0)
        result = sim.run(until=process)
        assert result.duration == pytest.approx(6.0)  # 5 s serialization + 1 s

    def test_per_request_overhead(self, sim):
        link = Link(sim, bandwidth=100.0, per_request_overhead_bytes=100.0)
        process = link.transfer(100.0)
        result = sim.run(until=process)
        assert result.duration == pytest.approx(2.0)

    def test_zero_bytes_costs_latency_and_overhead(self, sim):
        link = Link(sim, bandwidth=100.0, latency_s=0.5)
        process = link.transfer(0.0)
        result = sim.run(until=process)
        assert result.duration == pytest.approx(0.5)

    def test_negative_bytes_rejected(self, sim):
        link = Link(sim, bandwidth=100.0)
        with pytest.raises(ValueError):
            link.transfer(-1.0)

    def test_contention_serialises_transfers(self, sim):
        link = Link(sim, bandwidth=100.0, channels=1)
        p1 = link.transfer(500.0)
        p2 = link.transfer(500.0)
        r1 = None

        def collect(sim):
            nonlocal r1
            r1 = yield p1
            return (yield p2)

        r2 = sim.run(until=sim.spawn(collect(sim)))
        assert r1.finished_at == pytest.approx(5.0)
        assert r2.finished_at == pytest.approx(10.0)
        assert r2.duration == pytest.approx(10.0)  # includes queueing

    def test_multiple_channels_parallel(self, sim):
        link = Link(sim, bandwidth=100.0, channels=2)
        p1 = link.transfer(500.0)
        p2 = link.transfer(500.0)

        def collect(sim):
            a = yield p1
            b = yield p2
            return a, b

        a, b = sim.run(until=sim.spawn(collect(sim)))
        assert a.finished_at == pytest.approx(5.0)
        assert b.finished_at == pytest.approx(5.0)

    def test_time_varying_bandwidth(self, sim):
        trace = StepBandwidth([(0.0, 100.0), (5.0, 50.0)])
        link = Link(sim, bandwidth=trace)
        process = link.transfer(750.0)
        result = sim.run(until=process)
        # 500 B in 5 s at 100 B/s, 250 B in 5 s at 50 B/s.
        assert result.duration == pytest.approx(10.0)

    def test_estimate_matches_uncontended_transfer(self, sim):
        link = Link(sim, bandwidth=200.0, latency_s=0.25,
                    per_request_overhead_bytes=50.0)
        estimate = link.estimate_transfer_time(350.0)
        process = link.transfer(350.0)
        result = sim.run(until=process)
        assert result.duration == pytest.approx(estimate)

    def test_metrics_recorded(self, sim):
        link = Link(sim, bandwidth=100.0, name="up")
        sim.run(until=link.transfer(100.0))
        assert link.metrics.counter("up.transfers").value == 1
        assert link.metrics.counter("up.bytes").value == 100.0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            Link(sim, bandwidth=100.0, latency_s=-1.0)
        with pytest.raises(ValueError):
            Link(sim, bandwidth=100.0, per_request_overhead_bytes=-1.0)


class TestNetworkPath:
    def test_requires_links(self, sim):
        with pytest.raises(ValueError):
            NetworkPath(sim, [])

    def test_store_and_forward_sum(self, sim):
        a = Link(sim, bandwidth=100.0, latency_s=1.0)
        b = Link(sim, bandwidth=50.0, latency_s=2.0)
        path = NetworkPath(sim, [a, b])
        process = path.transfer(100.0)
        result = sim.run(until=process)
        # 1 + 1 + 2 + 2 = 6 s.
        assert result.duration == pytest.approx(6.0)
        assert path.total_latency_s == pytest.approx(3.0)

    def test_bottleneck_rate(self, sim):
        a = Link(sim, bandwidth=100.0)
        b = Link(sim, bandwidth=30.0)
        path = NetworkPath(sim, [a, b])
        assert path.bottleneck_rate() == 30.0

    def test_estimate_close_to_actual(self, sim):
        a = Link(sim, bandwidth=100.0, latency_s=0.5)
        b = Link(sim, bandwidth=80.0, latency_s=0.1)
        path = NetworkPath(sim, [a, b])
        estimate = path.estimate_transfer_time(400.0)
        result = sim.run(until=path.transfer(400.0))
        assert result.duration == pytest.approx(estimate)


class TestProfiles:
    def test_all_presets_resolve(self):
        for name in CONNECTIVITY_PROFILES:
            assert profile(name).name == name

    def test_lookup_case_insensitive(self):
        assert profile("WiFi").name == "wifi"

    def test_unknown_profile_rejected(self):
        with pytest.raises(KeyError):
            profile("carrier-pigeon")

    def test_technology_ordering(self):
        """Faster generations have more bandwidth and less latency."""
        g3, g4, g5 = profile("3g"), profile("4g"), profile("5g")
        assert g3.uplink_bps < g4.uplink_bps < g5.uplink_bps
        assert g3.access_latency_s > g4.access_latency_s > g5.access_latency_s

    def test_cloud_path_structure(self, sim):
        path = cloud_path(sim, "4g")
        assert len(path.links) == 2  # access + WAN

    def test_edge_path_lower_latency(self, sim):
        cloud = cloud_path(sim, "4g")
        edge = edge_path(sim, "4g")
        assert edge.total_latency_s < cloud.total_latency_s

    def test_downlink_faster_than_uplink(self, sim):
        up = cloud_path(sim, "4g", uplink=True)
        down = cloud_path(sim, "4g", uplink=False)
        assert down.bottleneck_rate() > up.bottleneck_rate()

    def test_cloud_transfer_runs(self, sim):
        path = cloud_path(sim, "wifi")
        result = sim.run(until=path.transfer(1_000_000.0))
        assert result.duration > 0
