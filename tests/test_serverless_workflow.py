"""Tests for the cloud-side workflow engine."""

import pytest

from repro.serverless import (
    FunctionSpec,
    PlatformConfig,
    RetryPolicy,
    ServerlessPlatform,
)
from repro.serverless.workflow import (
    WorkflowDefinition,
    WorkflowEngine,
    WorkflowStep,
    workflow_from_partition,
)
from repro.sim import Simulator
from repro.sim.rng import RngStream


def diamond_definition():
    return WorkflowDefinition(
        "diamond",
        [
            WorkflowStep("a", "fn.a"),
            WorkflowStep("b", "fn.b", depends_on=("a",)),
            WorkflowStep("c", "fn.c", depends_on=("a",)),
            WorkflowStep("d", "fn.d", depends_on=("b", "c")),
        ],
    )


def make_engine(sim, failure_probability=0.0, **engine_kwargs):
    platform = ServerlessPlatform(
        sim,
        PlatformConfig(
            keep_alive_s=600.0,
            cold_start_base_s=0.5,
            cold_start_per_package_mb_s=0.0,
            failure_probability=failure_probability,
        ),
        rng=RngStream(3) if failure_probability else None,
    )
    for name in ("fn.a", "fn.b", "fn.c", "fn.d"):
        platform.deploy(FunctionSpec(name, memory_mb=1769, package_mb=0))
    engine = WorkflowEngine(sim, platform, **engine_kwargs)
    return platform, engine


@pytest.fixture
def sim():
    return Simulator()


class TestDefinition:
    def test_topological_order(self):
        definition = diamond_definition()
        order = definition.step_names
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")
        assert len(definition) == 4

    def test_transition_count(self):
        assert diamond_definition().transition_count == 6

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkflowDefinition("empty", [])
        with pytest.raises(ValueError):
            WorkflowDefinition(
                "dup", [WorkflowStep("a", "f"), WorkflowStep("a", "f")]
            )
        with pytest.raises(KeyError):
            WorkflowDefinition(
                "ghost", [WorkflowStep("a", "f", depends_on=("nope",))]
            )
        with pytest.raises(ValueError):
            WorkflowDefinition(
                "cycle",
                [
                    WorkflowStep("a", "f", depends_on=("b",)),
                    WorkflowStep("b", "f", depends_on=("a",)),
                ],
            )
        with pytest.raises(ValueError):
            WorkflowStep("a", "f", depends_on=("a",))
        with pytest.raises(KeyError):
            diamond_definition().step("ghost")


class TestEngine:
    def test_executes_respecting_dependencies(self, sim):
        platform, engine = make_engine(sim)
        work = {name: 2.4 for name in "abcd"}
        execution = sim.run(until=engine.run(diamond_definition(), work))
        finish = {
            name: inv.finished_at for name, inv in execution.invocations.items()
        }
        assert finish["a"] < finish["b"]
        assert finish["a"] < finish["c"]
        assert max(finish["b"], finish["c"]) < finish["d"]

    def test_parallel_branches_overlap(self, sim):
        platform, engine = make_engine(sim)
        work = {"a": 0.24, "b": 24.0, "c": 24.0, "d": 0.24}
        execution = sim.run(until=engine.run(diamond_definition(), work))
        b = execution.invocations["b"]
        c = execution.invocations["c"]
        # b and c ran concurrently, not back to back.
        assert b.started_at < c.finished_at and c.started_at < b.finished_at

    def test_orchestration_cost_and_latency(self, sim):
        platform, engine = make_engine(
            sim, price_per_transition=1e-4, transition_latency_s=0.5
        )
        work = {name: 0.24 for name in "abcd"}
        execution = sim.run(until=engine.run(diamond_definition(), work))
        assert execution.orchestration_cost_usd == pytest.approx(6e-4)
        assert execution.total_cost_usd > execution.compute_cost_usd
        # Critical path a->b->d pays three transition latencies.
        assert execution.duration_s >= 3 * 0.5

    def test_undeployed_function_rejected(self, sim):
        platform, engine = make_engine(sim)
        platform.undeploy("fn.d")
        with pytest.raises(KeyError, match="undeployed"):
            engine.run(diamond_definition(), {n: 1.0 for n in "abcd"})

    def test_missing_work_rejected(self, sim):
        _platform, engine = make_engine(sim)
        with pytest.raises(ValueError, match="missing"):
            engine.run(diamond_definition(), {"a": 1.0})

    def test_retries_absorb_failures(self, sim):
        platform, engine = make_engine(
            sim,
            failure_probability=0.3,
            retry_policy=RetryPolicy(max_attempts=10, base_delay_s=0.1),
            rng=RngStream(5),
        )
        work = {name: 2.4 for name in "abcd"}
        execution = sim.run(until=engine.run(diamond_definition(), work))
        assert len(execution.invocations) == 4
        assert platform.metrics.counter("faas.failures").value >= 0

    def test_executions_recorded(self, sim):
        _platform, engine = make_engine(sim)
        work = {name: 0.24 for name in "abcd"}

        def driver(sim):
            yield engine.run(diamond_definition(), work)
            yield engine.run(diamond_definition(), work)

        sim.run(until=sim.spawn(driver(sim)))
        assert len(engine.executions) == 2
        assert engine.total_orchestration_cost == pytest.approx(
            2 * 6 * 2.5e-5
        )

    def test_engine_validation(self, sim):
        platform, _ = make_engine(sim)
        with pytest.raises(ValueError):
            WorkflowEngine(sim, platform, price_per_transition=-1)
        with pytest.raises(ValueError):
            WorkflowEngine(sim, platform, transition_latency_s=-1)


class TestWorkflowFromPartition:
    def test_builds_cloud_subgraph(self):
        cloud = ["parse", "clean", "aggregate"]
        predecessors = {
            "parse": ["collect"],          # cut edge: dropped
            "clean": ["parse"],
            "aggregate": ["clean"],
        }
        definition = workflow_from_partition(
            "analytics", cloud, predecessors, lambda c: f"analytics.{c}"
        )
        assert definition.step("parse").depends_on == ()
        assert definition.step("clean").depends_on == ("parse",)
        assert definition.step("aggregate").function == "analytics.aggregate"

    def test_end_to_end_with_catalog_app(self, sim):
        """The cloud side of a real partition runs as one workflow."""
        from repro.apps import nightly_analytics_app
        from repro.core.partitioning import Partition

        app = nightly_analytics_app()
        partition = Partition.full_offload(app)
        cloud = [n for n in app.component_names if partition.is_cloud(n)]

        platform = ServerlessPlatform(sim, PlatformConfig(
            cold_start_per_package_mb_s=0.0))
        for component in cloud:
            platform.deploy(
                FunctionSpec(f"analytics.{component}", memory_mb=1769,
                             package_mb=0)
            )
        engine = WorkflowEngine(sim, platform)
        definition = workflow_from_partition(
            "analytics",
            cloud,
            {n: app.predecessors(n) for n in cloud},
            lambda c: f"analytics.{c}",
        )
        work = {n: app.component(n).work_for(3.0) for n in cloud}
        execution = sim.run(until=engine.run(definition, work))
        assert set(execution.invocations) == set(cloud)
        finish = {n: i.finished_at for n, i in execution.invocations.items()}
        for flow in app.flows:
            if flow.src in finish and flow.dst in finish:
                assert finish[flow.src] <= finish[flow.dst]
