"""Allocation budget: the kernel hot path must stay allocation-lean.

The fast-lane kernel work (pooled heap entries, slotted dispatch
records, no per-spawn bootstrap ``Event`` or per-interrupt lambda)
bounds the *marginal* allocations of one more offloaded job.  This test
pins that budget with :mod:`tracemalloc` so an innocent-looking change —
a closure in ``timeout``, a dict-backed event, a per-transfer list — is
caught as the multi-kilobyte-per-job regression it is rather than as
slow drift.

Measured at the time of writing: ~3.3 KiB marginal peak per job on the
``offload_run`` scenario.  The budget is ~2.4x that, loose enough for
interpreter/platform variation, tight enough that reverting any of the
hot-path structures blows through it.
"""

import tracemalloc

from repro.sweep.scenarios import offload_run

PER_JOB_BUDGET_BYTES = 8_192
BASE_PEAK_BUDGET_BYTES = 512 * 1024  # the 10-job run, everything included

JOBS_SMALL = 10
JOBS_LARGE = 40


def _peak_bytes(jobs: int) -> int:
    config = {"jobs": jobs}
    offload_run(config)  # warm imports, caches, and code objects
    tracemalloc.start()
    try:
        offload_run(config)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak


def test_marginal_allocations_per_job_within_budget():
    small = _peak_bytes(JOBS_SMALL)
    large = _peak_bytes(JOBS_LARGE)
    per_job = (large - small) / (JOBS_LARGE - JOBS_SMALL)
    assert per_job <= PER_JOB_BUDGET_BYTES, (
        f"marginal peak is {per_job:.0f} B/job "
        f"(budget {PER_JOB_BUDGET_BYTES} B) — a kernel hot-path "
        f"structure is allocating per job again"
    )
    assert small <= BASE_PEAK_BUDGET_BYTES, (
        f"base {JOBS_SMALL}-job peak is {small} B "
        f"(budget {BASE_PEAK_BUDGET_BYTES} B)"
    )


def test_pure_event_loop_allocations_bounded():
    """The event fast lane itself: O(1) traced peak regardless of count.

    Steady-state succeed-dispatch traffic recycles everything it touches
    (one pending event alive at a time), so the traced peak must not
    scale with the number of events processed.
    """
    from repro.sim import Simulator
    from repro.sim.events import Event

    def run(n: int) -> int:
        sim = Simulator()
        remaining = [n]

        def relight(_event: Event) -> None:
            if remaining[0]:
                remaining[0] -= 1
                nxt = Event(sim)
                nxt.callbacks.append(relight)
                nxt.succeed(None)

        first = Event(sim)
        first.callbacks.append(relight)
        first.succeed(None)
        tracemalloc.start()
        try:
            sim.run()
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        assert sim.events_processed == n + 1
        return peak

    run(100)  # warm-up
    small, large = run(1_000), run(10_000)
    # 10x the events must not cost anywhere near 10x the peak.
    assert large <= 2 * small + 16_384, (small, large)


def test_traced_event_loop_transient_allocations_bounded():
    """The zero-allocation trace write path: O(1) peak *beyond* the trace.

    With a recording tracer attached, each loop iteration emits an
    instant.  The records themselves are retained (they are the trace),
    so what must stay O(1) is the transient overhead above the retained
    trace: ring-buffered writes materialise in bulk, so ``peak`` must
    track ``current`` (the final trace) plus a constant, instead of the
    per-event tuple/dict/span churn the direct path used to pay.
    """
    from repro.sim import Simulator
    from repro.sim.events import Event
    from repro.telemetry.tracer import Tracer

    def run(n: int) -> int:
        sim = Simulator()
        tracer = Tracer(sim)
        sim.tracer = tracer
        job = tracer.start_span("job")
        remaining = [n]

        def relight(_event: Event) -> None:
            if remaining[0]:
                remaining[0] -= 1
                tracer.instant("tick", parent=job)
                nxt = Event(sim)
                nxt.callbacks.append(relight)
                nxt.succeed(None)

        first = Event(sim)
        first.callbacks.append(relight)
        first.succeed(None)
        tracemalloc.start()
        try:
            sim.run()
            tracer.flush()
            current, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        tracer.end_span(job)
        assert len(job.events) == n
        return peak - current

    run(100)  # warm-up
    small, large = run(1_000), run(10_000)
    # 10x the instants must not cost ~10x the transient overhead.  The
    # slack covers one list over-allocation copy of the events list.
    assert large <= 2 * small + 98_304, (small, large)
