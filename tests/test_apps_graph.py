"""Tests for the application graph model."""

import pytest

from repro.apps import (
    AppGraph,
    Component,
    DataFlow,
    ml_training_app,
    nightly_analytics_app,
    photo_backup_app,
)


def simple_app():
    return AppGraph(
        "simple",
        [
            Component("a", work_gcycles=1.0, offloadable=False),
            Component("b", work_gcycles=2.0, work_gcycles_per_mb=1.0),
            Component("c", work_gcycles=3.0),
        ],
        [
            DataFlow("a", "b", bytes_fixed=100.0, bytes_per_mb=0.5),
            DataFlow("b", "c", bytes_fixed=50.0),
        ],
    )


class TestComponent:
    def test_work_scaling(self):
        component = Component("x", work_gcycles=2.0, work_gcycles_per_mb=3.0)
        assert component.work_for(0.0) == 2.0
        assert component.work_for(4.0) == 14.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Component("")
        with pytest.raises(ValueError):
            Component("x", work_gcycles=-1.0)
        with pytest.raises(ValueError):
            Component("x", parallel_fraction=1.5)
        with pytest.raises(ValueError):
            Component("x", package_mb=-1.0)
        with pytest.raises(ValueError):
            Component("x", min_memory_mb=-1.0)
        with pytest.raises(ValueError):
            Component("x").work_for(-1.0)


class TestDataFlow:
    def test_bytes_scaling(self):
        flow = DataFlow("a", "b", bytes_fixed=100.0, bytes_per_mb=0.5)
        assert flow.bytes_for(0.0) == 100.0
        assert flow.bytes_for(2.0) == 100.0 + 1e6

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DataFlow("a", "a")

    def test_negative_sizes_rejected(self):
        with pytest.raises(ValueError):
            DataFlow("a", "b", bytes_fixed=-1.0)


class TestAppGraphConstruction:
    def test_duplicate_component_rejected(self):
        with pytest.raises(ValueError):
            AppGraph("x", [Component("a"), Component("a")])

    def test_empty_app_rejected(self):
        with pytest.raises(ValueError):
            AppGraph("x", [])

    def test_unknown_flow_endpoint_rejected(self):
        with pytest.raises(KeyError):
            AppGraph("x", [Component("a")], [DataFlow("a", "ghost")])

    def test_duplicate_flow_rejected(self):
        with pytest.raises(ValueError):
            AppGraph(
                "x",
                [Component("a"), Component("b")],
                [DataFlow("a", "b"), DataFlow("a", "b")],
            )

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            AppGraph(
                "x",
                [Component("a"), Component("b")],
                [DataFlow("a", "b"), DataFlow("b", "a")],
            )


class TestAppGraphQueries:
    def test_topological_component_order(self):
        app = simple_app()
        assert app.component_names == ["a", "b", "c"]

    def test_lookup(self):
        app = simple_app()
        assert app.component("b").work_gcycles == 2.0
        with pytest.raises(KeyError):
            app.component("ghost")
        assert "b" in app
        assert "ghost" not in app
        assert len(app) == 3

    def test_flow_lookup(self):
        app = simple_app()
        assert app.flow("a", "b").bytes_fixed == 100.0
        with pytest.raises(KeyError):
            app.flow("a", "c")

    def test_neighbours(self):
        app = simple_app()
        assert app.predecessors("b") == ["a"]
        assert app.successors("b") == ["c"]

    def test_entry_exit(self):
        app = simple_app()
        assert app.entry_components == ["a"]
        assert app.exit_components == ["c"]

    def test_pinned_and_offloadable(self):
        app = simple_app()
        assert app.pinned_names() == ["a"]
        assert app.offloadable_names() == ["b", "c"]

    def test_is_tree(self):
        assert simple_app().is_tree()
        diamond = AppGraph(
            "diamond",
            [Component(n) for n in "abcd"],
            [
                DataFlow("a", "b"),
                DataFlow("a", "c"),
                DataFlow("b", "d"),
                DataFlow("c", "d"),
            ],
        )
        assert not diamond.is_tree()

    def test_total_work_and_flow(self):
        app = simple_app()
        assert app.total_work(1.0) == pytest.approx(1.0 + 3.0 + 3.0)
        assert app.total_flow_bytes(0.0) == pytest.approx(150.0)

    def test_with_component_replaces(self):
        app = simple_app()
        updated = app.with_component(Component("b", work_gcycles=99.0))
        assert updated.component("b").work_gcycles == 99.0
        assert app.component("b").work_gcycles == 2.0
        assert len(updated.flows) == len(app.flows)

    def test_with_unknown_component_rejected(self):
        with pytest.raises(KeyError):
            simple_app().with_component(Component("ghost"))


class TestCatalogApps:
    @pytest.mark.parametrize(
        "factory",
        [
            photo_backup_app,
            nightly_analytics_app,
            ml_training_app,
            pytest.param(
                __import__("repro.apps", fromlist=["document_ocr_app"]).document_ocr_app,
                id="document_ocr_app",
            ),
            pytest.param(
                __import__("repro.apps", fromlist=["video_highlights_app"]).video_highlights_app,
                id="video_highlights_app",
            ),
        ],
    )
    def test_catalog_apps_valid(self, factory):
        app = factory()
        assert len(app) >= 5
        assert app.entry_components
        assert app.exit_components
        # Endpoints touch the device and must stay local.
        for name in app.entry_components + app.exit_components:
            assert not app.component(name).offloadable

    def test_ml_training_dominated_by_train(self):
        app = ml_training_app()
        train = app.component("train").work_for(5.0)
        rest = app.total_work(5.0) - train
        assert train > 2 * rest

    def test_photo_backup_data_shrinks_downstream(self):
        app = photo_backup_app()
        raw = app.flow("capture", "transcode").bytes_for(5.0)
        final = app.flow("index_update", "notify").bytes_for(5.0)
        assert raw > 100 * final

    def test_ocr_output_tiny_vs_input(self):
        from repro.apps import document_ocr_app

        app = document_ocr_app()
        scan = app.flow("scan_intake", "preprocess").bytes_for(10.0)
        text = app.flow("recognize", "assemble_pdf").bytes_for(10.0)
        assert text < 0.1 * scan

    def test_video_highlights_has_fanout(self):
        from repro.apps import video_highlights_app

        app = video_highlights_app()
        assert len(app.successors("decode")) == 2
        assert not app.is_tree()
        # The dominant stage needs real memory.
        assert app.component("action_score").min_memory_mb >= 2048

    def test_catalog_registry_complete(self):
        from repro.apps.catalog import CATALOG

        assert set(CATALOG) == {
            "photo_backup",
            "nightly_analytics",
            "ml_training",
            "document_ocr",
            "video_highlights",
        }
        for name, factory in CATALOG.items():
            assert factory().name == name
