"""Tests for the delay-tolerant schedulers (contribution C5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import Job, photo_backup_app
from repro.core.scheduler import (
    CostWindowScheduler,
    DeadlineBatcher,
    EagerScheduler,
    EdfScheduler,
    ScheduleDecision,
)


@pytest.fixture
def app():
    return photo_backup_app()


def job_with(app, released_at=0.0, slack=math.inf):
    deadline = math.inf if math.isinf(slack) else released_at + slack
    return Job(app, released_at=released_at, deadline=deadline)


class TestEagerScheduler:
    def test_dispatches_now(self, app):
        decision = EagerScheduler().decide(job_with(app), now=12.0,
                                           estimate_completion_s=10.0)
        assert decision.dispatch_at == 12.0

    def test_fifo_priority(self, app):
        scheduler = EagerScheduler()
        early = scheduler.decide(job_with(app), now=1.0, estimate_completion_s=1.0)
        late = scheduler.decide(job_with(app), now=2.0, estimate_completion_s=1.0)
        assert early.priority < late.priority


class TestEdfScheduler:
    def test_priority_is_deadline(self, app):
        scheduler = EdfScheduler()
        tight = scheduler.decide(
            Job(app, released_at=0.0, deadline=100.0), 0.0, 10.0
        )
        loose = scheduler.decide(
            Job(app, released_at=0.0, deadline=500.0), 0.0, 10.0
        )
        assert tight.priority < loose.priority
        assert tight.dispatch_at == 0.0


class TestLatestSafeStart:
    def test_infinite_deadline_never_binds(self, app):
        scheduler = EagerScheduler()
        assert scheduler.latest_safe_start(job_with(app), 100.0) == math.inf

    def test_safety_factor_applied(self, app):
        scheduler = DeadlineBatcher(window_s=100.0, safety_factor=2.0)
        job = Job(app, released_at=0.0, deadline=100.0)
        assert scheduler.latest_safe_start(job, 10.0) == pytest.approx(80.0)


class TestDeadlineBatcher:
    def test_aligns_to_window_boundary(self, app):
        batcher = DeadlineBatcher(window_s=300.0)
        decision = batcher.decide(job_with(app), now=120.0, estimate_completion_s=10.0)
        assert decision.dispatch_at == 300.0

    def test_release_on_boundary_waits_full_window(self, app):
        batcher = DeadlineBatcher(window_s=300.0)
        decision = batcher.decide(job_with(app), now=300.0, estimate_completion_s=10.0)
        assert decision.dispatch_at == 600.0

    def test_jobs_in_same_window_share_dispatch(self, app):
        batcher = DeadlineBatcher(window_s=300.0)
        first = batcher.decide(job_with(app, released_at=10.0), 10.0, 5.0)
        second = batcher.decide(job_with(app, released_at=250.0), 250.0, 5.0)
        assert first.dispatch_at == second.dispatch_at == 300.0

    def test_deadline_pressure_overrides_window(self, app):
        batcher = DeadlineBatcher(window_s=10_000.0, safety_factor=1.0)
        job = Job(app, released_at=0.0, deadline=100.0)
        decision = batcher.decide(job, now=0.0, estimate_completion_s=20.0)
        assert decision.dispatch_at == pytest.approx(80.0)

    def test_already_past_safe_start_dispatches_now(self, app):
        batcher = DeadlineBatcher(window_s=100.0, safety_factor=1.0)
        job = Job(app, released_at=0.0, deadline=5.0)
        decision = batcher.decide(job, now=4.0, estimate_completion_s=50.0)
        assert decision.dispatch_at == 4.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DeadlineBatcher(window_s=0.0)
        with pytest.raises(ValueError):
            DeadlineBatcher(window_s=10.0, safety_factor=0.5)

    @given(
        now=st.floats(min_value=0.0, max_value=1e5),
        window=st.floats(min_value=1.0, max_value=1e4),
        slack=st.floats(min_value=1.0, max_value=1e5),
        estimate=st.floats(min_value=0.1, max_value=1e3),
    )
    @settings(max_examples=100, deadline=None)
    def test_invariants(self, now, window, slack, estimate):
        app = photo_backup_app()
        batcher = DeadlineBatcher(window_s=window)
        job = Job(app, released_at=now, deadline=now + slack)
        decision = batcher.decide(job, now, estimate)
        assert decision.dispatch_at >= now
        # Never dispatch beyond one full window after release.
        assert decision.dispatch_at <= now + window + 1e-6
        latest = batcher.latest_safe_start(job, estimate)
        if latest >= now:
            assert decision.dispatch_at <= latest + 1e-9


class TestCostWindowScheduler:
    def test_picks_cheapest_instant(self, app):
        # Price falls to its minimum at t=600 then rises again.
        price = lambda t: abs(t - 600.0)
        scheduler = CostWindowScheduler(price, resolution_s=100.0)
        job = Job(app, released_at=0.0, deadline=2000.0)
        decision = scheduler.decide(job, now=0.0, estimate_completion_s=10.0)
        assert decision.dispatch_at == pytest.approx(600.0)

    def test_respects_latest_safe_start(self, app):
        price = lambda t: -t  # cheaper the later, unboundedly
        scheduler = CostWindowScheduler(price, resolution_s=50.0, safety_factor=1.0)
        job = Job(app, released_at=0.0, deadline=500.0)
        decision = scheduler.decide(job, now=0.0, estimate_completion_s=100.0)
        assert decision.dispatch_at <= 400.0 + 1e-9

    def test_flat_price_dispatches_immediately(self, app):
        scheduler = CostWindowScheduler(lambda t: 1.0, resolution_s=100.0)
        job = Job(app, released_at=0.0, deadline=5000.0)
        decision = scheduler.decide(job, now=0.0, estimate_completion_s=1.0)
        assert decision.dispatch_at == 0.0

    def test_infinite_slack_scans_one_day(self, app):
        cheapest_at = 40_000.0
        price = lambda t: abs(t - cheapest_at)
        scheduler = CostWindowScheduler(price, resolution_s=1000.0)
        decision = scheduler.decide(job_with(app), now=0.0, estimate_completion_s=1.0)
        assert decision.dispatch_at == pytest.approx(cheapest_at)

    def test_validation(self):
        with pytest.raises(ValueError):
            CostWindowScheduler(lambda t: 1.0, resolution_s=0.0)
        with pytest.raises(ValueError):
            CostWindowScheduler(lambda t: 1.0, safety_factor=0.0)
        with pytest.raises(ValueError):
            CostWindowScheduler(lambda t: 1.0, max_samples=1)


class TestBatteryAwareScheduler:
    def make(self, fraction, inner=None, threshold=0.2):
        from repro.core.scheduler import BatteryAwareScheduler

        return BatteryAwareScheduler(
            battery_fraction_fn=lambda: fraction,
            inner=inner,
            threshold=threshold,
        )

    def test_healthy_battery_delegates(self, app):
        scheduler = self.make(fraction=0.9)
        job = Job(app, released_at=5.0, deadline=1000.0)
        decision = scheduler.decide(job, now=5.0, estimate_completion_s=10.0)
        assert decision.dispatch_at == 5.0  # inner eager fires immediately

    def test_low_battery_defers_to_latest_safe_start(self, app):
        scheduler = self.make(fraction=0.05)
        job = Job(app, released_at=0.0, deadline=1000.0)
        decision = scheduler.decide(job, now=0.0, estimate_completion_s=100.0)
        assert decision.dispatch_at == pytest.approx(1000.0 - 1.5 * 100.0)

    def test_low_battery_infinite_deadline_uses_grace(self, app):
        scheduler = self.make(fraction=0.05)
        decision = scheduler.decide(job_with(app), now=10.0,
                                    estimate_completion_s=10.0)
        assert decision.dispatch_at == pytest.approx(10.0 + 4 * 3600.0)

    def test_low_battery_never_past_safe_start(self, app):
        scheduler = self.make(fraction=0.05)
        job = Job(app, released_at=0.0, deadline=20.0)
        decision = scheduler.decide(job, now=15.0, estimate_completion_s=50.0)
        assert decision.dispatch_at == 15.0  # already late: go now

    def test_custom_inner_used_when_healthy(self, app):
        inner = DeadlineBatcher(window_s=100.0)
        scheduler = self.make(fraction=0.9, inner=inner)
        decision = scheduler.decide(job_with(app, released_at=10.0), 10.0, 1.0)
        assert decision.dispatch_at == 100.0  # the batcher's boundary

    def test_validation(self):
        from repro.core.scheduler import BatteryAwareScheduler

        with pytest.raises(ValueError):
            BatteryAwareScheduler(lambda: 1.0, threshold=1.5)
        with pytest.raises(ValueError):
            BatteryAwareScheduler(lambda: 1.0, safety_factor=0.5)

    def test_end_to_end_low_battery_defers(self):
        """Integration: a low-battery UE holds the job until the latest
        safe start (recharge happens in the meantime)."""
        from repro import Environment, Job, OffloadController, photo_backup_app
        from repro.core.scheduler import BatteryAwareScheduler
        from repro.device.ue import DeviceSpec

        env = Environment.build(
            seed=1, device=DeviceSpec(battery_capacity_j=40_000.0)
        )
        # Drain to 10%.
        env.ue._drain(36_000.0)
        scheduler = BatteryAwareScheduler(
            battery_fraction_fn=lambda: env.ue.battery_fraction,
            threshold=0.2,
        )
        controller = OffloadController(env, photo_backup_app(), scheduler=scheduler)
        controller.profile_offline()
        controller.plan(input_mb=2.0)

        def recharge_later(sim):
            yield sim.timeout(600.0)
            env.ue.recharge()

        env.sim.spawn(recharge_later(env.sim))
        job = Job(controller.app, input_mb=2.0, released_at=0.0, deadline=7200.0)
        report = controller.run_workload([job])
        result = report.results[0]
        assert result.started_at > 600.0  # deferred past the recharge
        assert result.met_deadline


class TestScheduleDecision:
    def test_nan_dispatch_rejected(self):
        with pytest.raises(ValueError):
            ScheduleDecision(job_id=1, dispatch_at=math.nan)
