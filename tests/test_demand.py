"""Tests for demand estimators (contribution C1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import photo_backup_app
from repro.core.demand import (
    DemandModel,
    DemandProfile,
    EwmaEstimator,
    MeanEstimator,
    QuantileEstimator,
    RegressionEstimator,
    StaticEstimator,
)
from repro.profiling import DemandObservation, Profiler
from repro.sim.rng import RngStream


def obs(component, input_mb, gcycles):
    return DemandObservation(component, input_mb, gcycles)


class TestDemandProfile:
    def test_predict_affine(self):
        profile = DemandProfile("c", base_gcycles=2.0, per_mb_gcycles=3.0)
        assert profile.predict(4.0) == pytest.approx(14.0)

    def test_predict_clamped_nonnegative(self):
        profile = DemandProfile("c", base_gcycles=0.0, per_mb_gcycles=0.0)
        assert profile.predict(10.0) == 0.0

    def test_conservative_inflates(self):
        profile = DemandProfile("c", 10.0, 0.0, uncertainty=0.1)
        assert profile.conservative(0.0, sigmas=2.0) == pytest.approx(12.0)

    def test_negative_input_rejected(self):
        with pytest.raises(ValueError):
            DemandProfile("c", 1.0, 0.0).predict(-1.0)


class TestStaticEstimator:
    def test_never_learns(self):
        estimator = StaticEstimator("c", guess_gcycles=7.0)
        estimator.observe(obs("c", 1.0, 100.0))
        assert estimator.predict(1.0) == 7.0

    def test_wrong_component_rejected(self):
        estimator = StaticEstimator("c", 1.0)
        with pytest.raises(ValueError):
            estimator.observe(obs("other", 1.0, 1.0))


class TestMeanEstimator:
    def test_prior_before_data(self):
        assert MeanEstimator("c", prior_gcycles=3.0).predict(1.0) == 3.0

    def test_converges_to_mean(self):
        estimator = MeanEstimator("c")
        estimator.observe_all([obs("c", 1.0, v) for v in (2.0, 4.0, 6.0)])
        assert estimator.predict(1.0) == pytest.approx(4.0)

    def test_profile_reports_uncertainty(self):
        estimator = MeanEstimator("c")
        estimator.observe_all([obs("c", 1.0, v) for v in (2.0, 4.0, 6.0)])
        profile = estimator.profile()
        assert profile.uncertainty > 0
        assert profile.observation_count == 3


class TestEwmaEstimator:
    def test_seeds_on_first_observation(self):
        estimator = EwmaEstimator("c", alpha=0.5)
        estimator.observe(obs("c", 1.0, 10.0))
        assert estimator.predict(1.0) == 10.0

    def test_tracks_drift_faster_than_mean(self):
        """After a regime change, EWMA catches up; the mean lags."""
        ewma = EwmaEstimator("c", alpha=0.3)
        mean = MeanEstimator("c")
        history = [10.0] * 20 + [30.0] * 10
        for value in history:
            observation = obs("c", 1.0, value)
            ewma.observe(observation)
            mean.observe(observation)
        assert abs(ewma.predict(1.0) - 30.0) < abs(mean.predict(1.0) - 30.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            EwmaEstimator("c", alpha=0.0)
        with pytest.raises(ValueError):
            EwmaEstimator("c", alpha=1.5)


class TestQuantileEstimator:
    def test_upper_quantile_conservative(self):
        estimator = QuantileEstimator("c", quantile=0.9)
        estimator.observe_all([obs("c", 1.0, float(v)) for v in range(1, 11)])
        assert estimator.predict(1.0) > 8.0

    def test_median(self):
        estimator = QuantileEstimator("c", quantile=0.5)
        estimator.observe_all([obs("c", 1.0, v) for v in (1.0, 2.0, 9.0)])
        assert estimator.predict(1.0) == pytest.approx(2.0)

    def test_prior_before_data(self):
        assert QuantileEstimator("c", prior_gcycles=5.0).predict(1.0) == 5.0

    def test_quantile_validation(self):
        with pytest.raises(ValueError):
            QuantileEstimator("c", quantile=0.0)


class TestRegressionEstimator:
    def test_exact_fit_on_noiseless_affine_data(self):
        estimator = RegressionEstimator("c")
        for x in (1.0, 2.0, 5.0, 10.0):
            estimator.observe(obs("c", x, 3.0 + 2.0 * x))
        assert estimator.predict(7.0) == pytest.approx(17.0, rel=1e-9)
        profile = estimator.profile()
        assert profile.base_gcycles == pytest.approx(3.0, abs=1e-9)
        assert profile.per_mb_gcycles == pytest.approx(2.0, abs=1e-9)
        assert profile.uncertainty == pytest.approx(0.0, abs=1e-6)

    def test_falls_back_to_mean_when_inputs_identical(self):
        estimator = RegressionEstimator("c")
        estimator.observe_all([obs("c", 2.0, v) for v in (4.0, 6.0)])
        assert estimator.predict(2.0) == pytest.approx(5.0)
        assert estimator.predict(100.0) == pytest.approx(5.0)

    def test_prior_before_data(self):
        assert RegressionEstimator("c", prior_gcycles=9.0).predict(5.0) == 9.0

    def test_slope_clamped_nonnegative(self):
        estimator = RegressionEstimator("c")
        # Decreasing demand with input (nonphysical): slope clamps to 0.
        estimator.observe_all([obs("c", x, 10.0 - x) for x in (1.0, 2.0, 3.0)])
        assert estimator.profile().per_mb_gcycles == 0.0

    @given(
        base=st.floats(min_value=0.1, max_value=50.0),
        slope=st.floats(min_value=0.0, max_value=10.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_recovers_any_affine_model(self, base, slope):
        estimator = RegressionEstimator("c")
        for x in (0.5, 1.0, 2.0, 4.0, 8.0):
            estimator.observe(obs("c", x, base + slope * x))
        assert estimator.predict(3.0) == pytest.approx(base + slope * 3.0, rel=1e-6)


class TestBayesianLinearEstimator:
    def make(self, **kwargs):
        from repro.core.demand import BayesianLinearEstimator

        return BayesianLinearEstimator("c", **kwargs)

    def test_prior_before_data(self):
        estimator = self.make(prior_base_gcycles=4.0, prior_slope=1.0)
        assert estimator.predict(2.0) == pytest.approx(6.0, rel=1e-6)

    def test_converges_to_true_affine_model(self):
        estimator = self.make(noise_std=0.1)
        for x in (0.5, 1.0, 2.0, 4.0, 8.0) * 4:
            estimator.observe(obs("c", x, 3.0 + 2.0 * x))
        assert estimator.predict(6.0) == pytest.approx(15.0, rel=0.02)

    def test_uncertainty_shrinks_with_data(self):
        estimator = self.make()
        before = estimator.predictive_std(3.0)
        for x in (1.0, 2.0, 4.0) * 5:
            estimator.observe(obs("c", x, 5.0 + x))
        after = estimator.predictive_std(3.0)
        assert after < before

    def test_extrapolation_is_less_certain(self):
        estimator = self.make()
        for x in (1.0, 2.0, 3.0) * 3:
            estimator.observe(obs("c", x, 5.0 + x))
        inside = estimator.predictive_std(2.0)
        outside = estimator.predictive_std(50.0)
        assert outside > inside

    def test_credible_upper_bounds_mean(self):
        estimator = self.make()
        estimator.observe(obs("c", 1.0, 5.0))
        assert estimator.credible_upper(1.0) > estimator.predict(1.0)

    def test_credible_upper_covers_noisy_truth(self):
        """With enough data, the 3-sigma bound covers nearly all draws."""
        from repro.sim.rng import RngStream

        rng = RngStream(13)
        estimator = self.make(noise_std=1.0)
        truth = lambda x: 4.0 + 2.0 * x
        for _ in range(60):
            x = rng.uniform(0.5, 5.0)
            estimator.observe(obs("c", x, truth(x) + rng.normal(0.0, 1.0)))
        covered = 0
        for _ in range(100):
            x = rng.uniform(0.5, 5.0)
            draw = truth(x) + rng.normal(0.0, 1.0)
            if draw <= estimator.credible_upper(x, sigmas=3.0):
                covered += 1
        assert covered >= 97

    def test_profile_exports_uncertainty(self):
        estimator = self.make()
        estimator.observe(obs("c", 1.0, 5.0))
        profile = estimator.profile()
        assert profile.uncertainty > 0
        assert profile.observation_count == 1

    def test_validation(self):
        from repro.core.demand import BayesianLinearEstimator

        with pytest.raises(ValueError):
            BayesianLinearEstimator("c", prior_std=0.0)
        with pytest.raises(ValueError):
            BayesianLinearEstimator("c", noise_std=-1.0)

    def test_works_as_demand_model_factory(self):
        from repro.core.demand import BayesianLinearEstimator

        app = photo_backup_app()
        model = DemandModel(app, BayesianLinearEstimator, noise_std=0.3)
        profiler = Profiler(RngStream(0), noise_sigma=0.05)
        model.observe_profile(profiler.profile(app, [1.0, 2.0, 5.0], 3))
        assert model.mean_relative_error(3.0) < 0.2


class TestDemandModel:
    def test_routes_observations(self):
        app = photo_backup_app()
        model = DemandModel(app)
        model.observe(obs("transcode", 1.0, 5.0))
        assert model.estimators["transcode"].observation_count == 1
        assert model.estimators["thumbnail"].observation_count == 0

    def test_unknown_component_rejected(self):
        model = DemandModel(photo_backup_app())
        with pytest.raises(KeyError):
            model.observe(obs("ghost", 1.0, 1.0))

    def test_profiler_training_reduces_error(self):
        app = photo_backup_app()
        trained = DemandModel(app)
        profiler = Profiler(RngStream(0), noise_sigma=0.05)
        trained.observe_profile(profiler.profile(app, [0.5, 1, 2, 5, 10], 3))

        untrained = DemandModel(app)
        assert trained.mean_relative_error(4.0) < untrained.mean_relative_error(4.0)
        assert trained.mean_relative_error(4.0) < 0.15

    def test_profiles_export(self):
        app = photo_backup_app()
        model = DemandModel(app)
        profiles = model.profiles()
        assert set(profiles) == set(app.component_names)

    def test_custom_estimator_factory(self):
        app = photo_backup_app()
        model = DemandModel(app, EwmaEstimator, alpha=0.5)
        assert all(
            isinstance(e, EwmaEstimator) for e in model.estimators.values()
        )
