"""Golden-trace regression tests.

Each test replays the pinned end-to-end scenario from
:mod:`repro.testing.golden` and compares the rendered trace — every job
outcome, failure, and metric, with ``repr`` floats — against the fixture
committed under ``tests/golden/``.  A mismatch means simulated behaviour
changed; if the change is intentional, regenerate with::

    PYTHONPATH=src python tools/regen_golden.py

and commit the fixture diff so review sees exactly which numbers moved.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.testing.golden import (
    GOLDEN_SEED,
    TRACE_SCHEMA,
    run_golden_scenario,
    trace_digest,
)

GOLDEN_DIR = Path(__file__).parent / "golden"
REGEN_HINT = (
    "Simulated behaviour diverged from the committed golden trace. If this "
    "change is intentional, run `PYTHONPATH=src python tools/regen_golden.py` "
    "and commit the fixture diff."
)

VARIANTS = [
    ("pipeline_baseline.json", False),
    ("pipeline_faults.json", True),
]

TRACED_FIXTURE = "pipeline_traced.json"


def _load(filename: str) -> dict:
    path = GOLDEN_DIR / filename
    assert path.exists(), f"missing golden fixture {path}"
    return json.loads(path.read_text())


@pytest.mark.parametrize("filename,with_faults", VARIANTS)
def test_trace_matches_committed_fixture(filename, with_faults):
    fixture = _load(filename)
    assert fixture["schema"] == TRACE_SCHEMA
    assert fixture["seed"] == GOLDEN_SEED
    assert fixture["with_faults"] is with_faults

    lines = run_golden_scenario(with_faults)
    # Compare lines first: on drift, the assertion diff shows *which*
    # trace entries moved, not just that two digests differ.
    assert lines == fixture["lines"], REGEN_HINT
    assert trace_digest(lines) == fixture["digest"], REGEN_HINT


@pytest.mark.parametrize("with_faults", [False, True])
def test_scenario_is_deterministic_in_process(with_faults):
    """Two fresh runs in one interpreter produce byte-identical traces."""
    first = run_golden_scenario(with_faults)
    second = run_golden_scenario(with_faults)
    assert first == second
    assert trace_digest(first) == trace_digest(second)


def test_fixture_digest_is_self_consistent():
    """The stored digest matches the stored lines (fixtures not hand-edited)."""
    for filename, _ in VARIANTS:
        fixture = _load(filename)
        assert trace_digest(fixture["lines"]) == fixture["digest"], filename


def test_traced_variant_matches_committed_fixture():
    """The telemetry-enabled run — spans, attribution, labeled metrics,
    and the Chrome-export digest — replays bit-for-bit, so trace-schema
    drift is caught exactly like behavioural drift."""
    fixture = _load(TRACED_FIXTURE)
    assert fixture["schema"] == TRACE_SCHEMA
    assert fixture["traced"] is True

    lines = run_golden_scenario(fixture["with_faults"], traced=True)
    assert lines == fixture["lines"], REGEN_HINT
    assert trace_digest(lines) == fixture["digest"], REGEN_HINT


def test_tracing_does_not_perturb_the_simulation():
    """The standard lines of a traced run are byte-identical to the
    untraced variant: instrumentation adds no events and no RNG draws."""
    untraced = run_golden_scenario(True)
    traced = run_golden_scenario(True, traced=True)
    assert traced[: len(untraced)] == untraced
    extra = traced[len(untraced):]
    assert extra, "traced run should append telemetry lines"
    assert all(
        line.split(" ", 1)[0] in {"trace", "span", "attribution", "labeled"}
        for line in extra
    )


def test_traced_fixture_covers_fault_annotations():
    """The traced fixture actually contains fault-window spans, retry
    instants, and per-phase attribution — not just job spans."""
    joined = "\n".join(_load(TRACED_FIXTURE)["lines"])
    for marker in (
        "cat=fault",
        "cat=cold_start",
        "cat=upload",
        "cat=execute",
        "attribution job=",
        "labeled fault_windows_total",
        "labeled jobs_total",
    ):
        assert marker in joined, f"expected telemetry marker {marker!r}"


def test_fault_variant_actually_injects_faults():
    """The faulted trace differs from the baseline and shows fault activity."""
    baseline = _load("pipeline_baseline.json")
    faulted = _load("pipeline_faults.json")
    assert baseline["digest"] != faulted["digest"]
    joined = "\n".join(faulted["lines"])
    for marker in (
        "faults.injected.zone_outage",
        "faas.retry.outage_waits",
        "faas.hedges",
        "faas.reclamations",
        "faas.straggler_slowdowns",
        "photo_backup.fallbacks",
        "ue.brownouts",
    ):
        assert marker in joined, f"expected fault marker {marker!r} in trace"
    assert not any(line.startswith("metric faults") for line in baseline["lines"])
