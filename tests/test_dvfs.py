"""Tests for DVFS (dynamic voltage/frequency scaling) on the UE."""

import math

import pytest

from repro import Environment, Job, OffloadController, photo_backup_app
from repro.core.partitioning import FixedPartitioner, Partition
from repro.device import DeviceSpec, UserEquipment
from repro.sim import Simulator


class TestDeviceSpecDvfs:
    def test_execution_time_scales_inversely(self):
        spec = DeviceSpec(cycles_per_second=1.0e9)
        assert spec.execution_time(1.0, 0.5) == pytest.approx(
            2 * spec.execution_time(1.0, 1.0)
        )

    def test_power_scales_cubically(self):
        spec = DeviceSpec()
        assert spec.compute_power_w(0.5) == pytest.approx(
            spec.energy.compute_w / 8
        )

    def test_energy_scales_quadratically(self):
        spec = DeviceSpec()
        full = spec.compute_energy_j(10.0, 1.0)
        half = spec.compute_energy_j(10.0, 0.5)
        assert half == pytest.approx(full / 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(frequency_steps=())
        with pytest.raises(ValueError):
            DeviceSpec(frequency_steps=(0.0, 1.0))
        with pytest.raises(ValueError):
            DeviceSpec(frequency_steps=(1.5, 1.0))
        with pytest.raises(ValueError):
            DeviceSpec(frequency_steps=(0.5, 0.8))  # missing full speed
        with pytest.raises(ValueError):
            DeviceSpec().execution_time(1.0, 0.0)
        with pytest.raises(ValueError):
            DeviceSpec().compute_power_w(2.0)


class TestUserEquipmentDvfs:
    def test_execute_at_reduced_frequency(self):
        sim = Simulator()
        ue = UserEquipment(sim, DeviceSpec(cycles_per_second=1.0e9))
        record = sim.run(until=ue.execute(2.0, frequency_fraction=0.5))
        assert record.latency == pytest.approx(4.0)
        # E = 0.9 W * (0.5)^3 * 4 s = 0.45 J.
        assert record.energy_j == pytest.approx(0.9 * 0.125 * 4.0)

    def test_reduced_frequency_saves_energy_despite_longer_runtime(self):
        sim = Simulator()
        ue = UserEquipment(sim, DeviceSpec())
        full = sim.run(until=ue.execute(5.0, 1.0))
        slow = sim.run(until=ue.execute(5.0, 0.5))
        assert slow.latency > full.latency
        assert slow.energy_j < full.energy_j

    def test_estimates_match(self):
        sim = Simulator()
        ue = UserEquipment(sim, DeviceSpec())
        t = ue.estimate_execution_time(3.0, 0.6)
        e = ue.estimate_execution_energy(3.0, 0.6)
        record = sim.run(until=ue.execute(3.0, 0.6))
        assert record.latency == pytest.approx(t)
        assert record.energy_j == pytest.approx(e)


def local_controller(env, dvfs):
    app = photo_backup_app()
    controller = OffloadController(
        env,
        app,
        partitioner=FixedPartitioner(Partition.local_only(app)),
        dvfs=dvfs,
    )
    controller.plan(input_mb=4.0)
    return controller


class TestControllerDvfs:
    def test_off_by_default_runs_full_speed(self):
        env = Environment.build(seed=1)
        controller = local_controller(env, dvfs=False)
        job = Job(controller.app, input_mb=4.0, deadline=1e6)
        assert controller.select_frequency(job, 0.0) == 1.0

    def test_infinite_deadline_selects_lowest(self):
        env = Environment.build(seed=1)
        controller = local_controller(env, dvfs=True)
        job = Job(controller.app, input_mb=4.0)  # no deadline
        assert controller.select_frequency(job, 0.0) == min(
            env.ue.spec.frequency_steps
        )

    def test_tight_deadline_selects_full_speed(self):
        env = Environment.build(seed=1)
        controller = local_controller(env, dvfs=True)
        estimate = controller.estimate_completion(
            Job(controller.app, input_mb=4.0), 1.0
        )
        job = Job(controller.app, input_mb=4.0, deadline=estimate * 1.2)
        assert controller.select_frequency(job, 0.0) == 1.0

    def test_loose_deadline_selects_reduced(self):
        env = Environment.build(seed=1)
        controller = local_controller(env, dvfs=True)
        job = Job(controller.app, input_mb=4.0, deadline=36_000.0)
        fraction = controller.select_frequency(job, 0.0)
        assert fraction < 1.0

    def test_dvfs_saves_energy_and_meets_deadline_end_to_end(self):
        def run(dvfs):
            env = Environment.build(seed=2, execution_noise_sigma=0.0)
            controller = local_controller(env, dvfs=dvfs)
            jobs = [
                Job(controller.app, input_mb=4.0, released_at=100.0 * i,
                    deadline=100.0 * i + 3600.0)
                for i in range(4)
            ]
            return controller.run_workload(jobs)

        fast = run(False)
        slow = run(True)
        assert slow.total_ue_energy_j < 0.5 * fast.total_ue_energy_j
        assert slow.deadline_miss_rate == 0.0
        assert slow.mean_response_s > fast.mean_response_s

    def test_dvfs_only_slows_local_components(self):
        """Offloaded work is unaffected by the device's DVFS point."""
        env = Environment.build(seed=3, execution_noise_sigma=0.0)
        app = photo_backup_app()
        controller = OffloadController(
            env, app,
            partitioner=FixedPartitioner(Partition.full_offload(app)),
            dvfs=True,
        )
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        job = Job(app, input_mb=4.0, deadline=36_000.0)
        report = controller.run_workload([job])
        # Cloud components finish on the platform's clock regardless.
        invocations = env.platform.invocations
        assert len(invocations) == len(Partition.full_offload(app).cloud)
