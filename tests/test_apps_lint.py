"""Tests for the application linter."""

import pytest

from repro.apps import AppGraph, Component, DataFlow
from repro.apps.catalog import CATALOG
from repro.apps.lint import LintWarning, lint_app


def codes(app):
    return {w.code for w in lint_app(app)}


class TestRules:
    def test_catalog_apps_are_clean(self):
        for name, factory in CATALOG.items():
            warnings = lint_app(factory())
            assert warnings == [], (name, [str(w) for w in warnings])

    def test_w001_offloadable_entry(self):
        app = AppGraph(
            "x",
            [Component("entry"), Component("exit", offloadable=False)],
            [DataFlow("entry", "exit")],
        )
        assert "W001" in codes(app)

    def test_w002_isolated_component(self):
        app = AppGraph(
            "x",
            [
                Component("a", offloadable=False),
                Component("b", offloadable=False),
                Component("floating"),
            ],
            [DataFlow("a", "b")],
        )
        found = codes(app)
        assert "W002" in found

    def test_w003_zero_work_offloadable(self):
        app = AppGraph(
            "x",
            [
                Component("a", offloadable=False),
                Component("noop", work_gcycles=0.0, work_gcycles_per_mb=0.0),
                Component("z", offloadable=False),
            ],
            [DataFlow("a", "noop"), DataFlow("noop", "z")],
        )
        assert "W003" in codes(app)

    def test_w004_impossible_memory_floor(self):
        app = AppGraph(
            "x",
            [
                Component("a", offloadable=False),
                Component("huge", min_memory_mb=99999),
                Component("z", offloadable=False),
            ],
            [DataFlow("a", "huge"), DataFlow("huge", "z")],
        )
        assert "W004" in codes(app)

    def test_w005_data_amplification(self):
        app = AppGraph(
            "x",
            [Component("a", offloadable=False), Component("z", offloadable=False)],
            [DataFlow("a", "z", bytes_per_mb=5.0)],
        )
        assert "W005" in codes(app)

    def test_w007_heavy_pinned_component(self):
        app = AppGraph(
            "x",
            [
                Component("boulder", work_gcycles=100.0, offloadable=False),
                Component("pebble", work_gcycles=1.0),
            ],
            [DataFlow("boulder", "pebble")],
        )
        assert "W007" in codes(app)

    def test_warning_formatting(self):
        warning = LintWarning("W001", "entry", "message")
        assert str(warning) == "[W001] entry: message"

    def test_warnings_sorted(self):
        app = AppGraph(
            "x",
            [
                Component("z_heavy", work_gcycles=100.0, offloadable=False),
                Component("a_noop", work_gcycles=0.0),
            ],
            [DataFlow("z_heavy", "a_noop")],
        )
        warnings = lint_app(app)
        keys = [(w.code, w.subject) for w in warnings]
        assert keys == sorted(keys)
