"""Tests for deterministic scenario profiling (`repro profile`)."""

import json

import pytest

from repro.cli import main
from repro.profiling.hotspots import (
    expand_scenario_ref,
    profile_scenario,
)

CONFIG = {"jobs": 3, "input_mb": 1.0}


class TestExpandScenarioRef:
    def test_bare_name_resolves_against_builtin_module(self):
        assert (
            expand_scenario_ref("offload_run")
            == "repro.sweep.scenarios:offload_run"
        )

    def test_qualified_ref_passes_through(self):
        assert expand_scenario_ref("pkg.mod:fn") == "pkg.mod:fn"


class TestProfileScenario:
    def test_runs_scenario_and_ranks_by_calls(self):
        result = profile_scenario("offload_run", CONFIG, top=12)
        assert result.scenario == "repro.sweep.scenarios:offload_run"
        assert len(result.top) == 12
        assert result.value["jobs_completed"] == 3
        counts = [row.ncalls for row in result.top]
        assert counts == sorted(counts, reverse=True)
        assert all(row.ncalls > 0 for row in result.top)
        # Kernel machinery must show up in the hot set of a sim workload.
        assert any("repro/sim/" in row.site for row in result.top)

    def test_row_order_is_identical_across_reruns(self):
        key = lambda result: [
            (row.site, row.ncalls, row.primcalls) for row in result.top
        ]
        first = profile_scenario("offload_run", CONFIG, top=20)
        second = profile_scenario("offload_run", CONFIG, top=20)
        assert key(first) == key(second)
        assert first.total_calls == second.total_calls
        assert first.total_prim_calls == second.total_prim_calls

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError):
            profile_scenario("no_such_scenario", {})

    def test_render_and_dict_shapes(self):
        result = profile_scenario("offload_run", CONFIG, top=5)
        rendered = result.render().render()
        assert "Hot functions" in rendered
        document = result.to_dict()
        assert document["config"] == CONFIG
        assert len(document["top"]) == 5
        assert json.dumps(document)  # JSON-serialisable as claimed


class TestProfileCommand:
    def test_profile_prints_table_and_writes_json(self, capsys, tmp_path):
        out = tmp_path / "profile.json"
        code = main([
            "profile", "--scenario", "offload_run",
            "--config", json.dumps(CONFIG), "--top", "8",
            "--out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "Hot functions" in stdout
        assert "reproducible" in stdout
        document = json.loads(out.read_text())
        assert document["scenario"] == "repro.sweep.scenarios:offload_run"
        assert len(document["top"]) == 8

    def test_profile_rejects_bad_config_json(self):
        with pytest.raises(SystemExit):
            main(["profile", "--config", "not json"])

    def test_profile_rejects_non_object_config(self):
        with pytest.raises(SystemExit):
            main(["profile", "--config", "[1, 2]"])

    def test_profile_unknown_scenario_exits_2(self, capsys):
        assert main(["profile", "--scenario", "nope_nope"]) == 2
        assert "error:" in capsys.readouterr().err
