"""Same-seed traced runs must be byte-identical, end to end.

This is the telemetry layer's half of the repository's determinism
contract: the simulator already replays identically for a fixed seed
(tests/test_golden_trace.py); here the *exported* artifacts — the Chrome
trace JSON and the labeled-metrics snapshots — must also match byte for
byte, including across repeated runs inside one interpreter (where the
process-global job counter would otherwise leak into span labels).
"""

from __future__ import annotations

import pytest

from repro.apps.catalog import photo_backup_app
from repro.apps.jobs import Job
from repro.core.controller import Environment, OffloadController
from repro.faults import inject_faults
from repro.telemetry import attach_tracer, dumps_chrome_trace
from repro.testing.golden import golden_fault_schedule

SEED = 1234


def traced_run(with_faults: bool = False):
    """One fully traced workload run; returns the tracer."""
    env = Environment.build(seed=SEED)
    tracer = attach_tracer(env)
    if with_faults:
        inject_faults(env, golden_fault_schedule())
    controller = OffloadController(env, photo_backup_app())
    controller.profile_offline()
    controller.plan(input_mb=2.0)
    jobs = [
        Job(
            controller.app,
            input_mb=2.0,
            released_at=45.0 * i,
            deadline=45.0 * i + 3600.0,
        )
        for i in range(3)
    ]
    controller.run_workload(jobs)
    return tracer


@pytest.mark.parametrize("with_faults", [False, True])
def test_trace_json_is_byte_identical(with_faults):
    first = dumps_chrome_trace(traced_run(with_faults), metadata={"seed": SEED})
    second = dumps_chrome_trace(traced_run(with_faults), metadata={"seed": SEED})
    assert first == second


def test_metrics_exports_are_byte_identical():
    a, b = traced_run(), traced_run()
    assert a.metrics.to_json() == b.metrics.to_json()
    assert a.metrics.to_prometheus() == b.metrics.to_prometheus()


def test_span_structure_is_identical():
    a, b = traced_run(), traced_run()
    assert len(a) == len(b)
    for left, right in zip(a.spans, b.spans):
        assert (left.span_id, left.parent_id, left.name, left.category) == (
            right.span_id,
            right.parent_id,
            right.name,
            right.category,
        )
        assert (left.start, left.end) == (right.start, right.end)
        assert left.attributes == right.attributes
        assert left.events == right.events


def test_no_spans_leak_open():
    tracer = traced_run(with_faults=True)
    assert tracer.open_spans() == []
