"""Tests for the UE model: CPU, energy, battery, radio."""

import pytest

from repro.device import DeviceSpec, EnergyModel, UserEquipment
from repro.device.ue import BatteryDepleted
from repro.network import Link, NetworkPath
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


def make_ue(sim, **spec_kwargs):
    defaults = dict(cycles_per_second=1.0e9, cores=2, battery_capacity_j=100.0)
    defaults.update(spec_kwargs)
    return UserEquipment(sim, DeviceSpec(**defaults))


class TestEnergyModel:
    def test_energy_is_power_times_time(self):
        model = EnergyModel(compute_w=2.0, transmit_w=3.0, receive_w=1.5, idle_w=0.1)
        assert model.compute_energy(4.0) == pytest.approx(8.0)
        assert model.transmit_energy(2.0) == pytest.approx(6.0)
        assert model.receive_energy(2.0) == pytest.approx(3.0)
        assert model.idle_energy(10.0) == pytest.approx(1.0)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel().compute_energy(-1.0)

    def test_negative_power_rejected(self):
        with pytest.raises(ValueError):
            EnergyModel(compute_w=-1.0)

    def test_radio_costs_more_than_compute_by_default(self):
        model = EnergyModel()
        assert model.transmit_w > model.compute_w > model.idle_w


class TestDeviceSpec:
    def test_execution_time(self):
        spec = DeviceSpec(cycles_per_second=2.0e9)
        assert spec.execution_time(4.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceSpec(cycles_per_second=0.0)
        with pytest.raises(ValueError):
            DeviceSpec(cores=0)
        with pytest.raises(ValueError):
            DeviceSpec(battery_capacity_j=0.0)
        with pytest.raises(ValueError):
            DeviceSpec().execution_time(-1.0)


class TestExecution:
    def test_single_execution(self, sim):
        ue = make_ue(sim)
        record = sim.run(until=ue.execute(2.0))  # 2 gcycles at 1 GHz = 2 s
        assert record.latency == pytest.approx(2.0)
        assert record.energy_j == pytest.approx(0.9 * 2.0)

    def test_cores_limit_parallelism(self, sim):
        ue = make_ue(sim, cores=2)
        events = [ue.execute(1.0) for _ in range(3)]

        def join(sim):
            got = yield sim.all_of(events)
            return sorted(r.finished_at for r in got.values())

        finishes = sim.run(until=sim.spawn(join(sim)))
        assert finishes == pytest.approx([1.0, 1.0, 2.0])

    def test_estimates_match_execution(self, sim):
        ue = make_ue(sim)
        estimate_t = ue.estimate_execution_time(3.0)
        estimate_e = ue.estimate_execution_energy(3.0)
        record = sim.run(until=ue.execute(3.0))
        assert record.latency == pytest.approx(estimate_t)
        assert record.energy_j == pytest.approx(estimate_e)


class TestBattery:
    def test_drains_with_compute(self, sim):
        ue = make_ue(sim, battery_capacity_j=100.0)
        sim.run(until=ue.execute(10.0))  # 10 s -> 9 J
        assert ue.battery_level_j == pytest.approx(91.0)
        assert ue.battery_fraction == pytest.approx(0.91)

    def test_depletion_fails_execution(self, sim):
        ue = make_ue(sim, battery_capacity_j=1.0)
        process = ue.execute(10.0)  # needs 9 J
        with pytest.raises(BatteryDepleted):
            sim.run(until=process)
        assert ue.battery_level_j == 0.0

    def test_recharge_full(self, sim):
        ue = make_ue(sim, battery_capacity_j=100.0)
        sim.run(until=ue.execute(10.0))
        ue.recharge()
        assert ue.battery_level_j == pytest.approx(100.0)

    def test_recharge_partial_caps_at_capacity(self, sim):
        ue = make_ue(sim, battery_capacity_j=100.0)
        sim.run(until=ue.execute(10.0))
        ue.recharge(4.0)
        assert ue.battery_level_j == pytest.approx(95.0)
        ue.recharge(1000.0)
        assert ue.battery_level_j == pytest.approx(100.0)

    def test_energy_metric_accumulates(self, sim):
        ue = make_ue(sim)
        sim.run(until=ue.execute(10.0))
        assert ue.metrics.counter("ue.energy_j").value == pytest.approx(9.0)


class TestRadio:
    def make_path(self, sim, rate=100.0, latency=0.0):
        return NetworkPath(sim, [Link(sim, bandwidth=rate, latency_s=latency)])

    def test_transmit_drains_tx_energy(self, sim):
        ue = make_ue(sim)
        path = self.make_path(sim, rate=100.0)
        result = sim.run(until=ue.transmit(1000.0, path))
        assert result.duration == pytest.approx(10.0)
        # Default transmit power is 1.3 W.
        assert ue.battery_level_j == pytest.approx(100.0 - 13.0)

    def test_receive_drains_rx_energy(self, sim):
        ue = make_ue(sim)
        path = self.make_path(sim, rate=100.0)
        sim.run(until=ue.receive(1000.0, path))
        assert ue.battery_level_j == pytest.approx(100.0 - 10.0)

    def test_radio_depletion(self, sim):
        ue = make_ue(sim, battery_capacity_j=5.0)
        path = self.make_path(sim, rate=10.0)
        process = ue.transmit(1000.0, path)  # 100 s at 1.3 W
        with pytest.raises(BatteryDepleted):
            sim.run(until=process)

    def test_byte_counters(self, sim):
        ue = make_ue(sim)
        path = self.make_path(sim)
        sim.run(until=ue.transmit(500.0, path))
        assert ue.metrics.counter("ue.tx_bytes").value == 500.0
