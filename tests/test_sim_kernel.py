"""Unit tests for the simulation kernel (Simulator, Process)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start(self):
        assert Simulator(start=100.0).now == 100.0

    def test_run_until_time_advances_clock(self, sim):
        sim.timeout(3.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_rejected(self, sim):
        sim.timeout(1.0)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)

    def test_peek_reports_next_event(self, sim):
        sim.timeout(7.0)
        assert sim.peek() == 7.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_step_on_empty_heap_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_events_processed_counts(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.events_processed == 2


class TestProcess:
    def test_return_value_via_run(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "done"

        process = sim.spawn(proc(sim))
        assert sim.run(until=process) == "done"

    def test_requires_generator(self, sim):
        def not_a_generator():
            return 42

        with pytest.raises(TypeError):
            sim.spawn(not_a_generator)  # type: ignore[arg-type]

    def test_spawn_does_not_run_user_code_synchronously(self, sim):
        order = []

        def proc(sim):
            order.append("ran")
            yield sim.timeout(0)

        sim.spawn(proc(sim))
        assert order == []
        sim.run()
        assert order == ["ran"]

    def test_process_failure_propagates_to_run(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise KeyError("missing")

        process = sim.spawn(proc(sim))
        with pytest.raises(KeyError):
            sim.run(until=process)

    def test_join_another_process(self, sim):
        def worker(sim):
            yield sim.timeout(4.0)
            return 99

        def parent(sim):
            worker_process = sim.spawn(worker(sim))
            value = yield worker_process
            return (sim.now, value)

        process = sim.spawn(parent(sim))
        assert sim.run(until=process) == (4.0, 99)

    def test_join_already_finished_process(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)
            return "early"

        worker_process = sim.spawn(worker(sim))
        sim.run()

        def late_joiner(sim):
            value = yield worker_process
            return value

        process = sim.spawn(late_joiner(sim))
        assert sim.run(until=process) == "early"

    def test_yield_non_event_is_error(self, sim):
        def proc(sim):
            yield 42  # type: ignore[misc]

        process = sim.spawn(proc(sim))
        with pytest.raises(SimulationError):
            sim.run(until=process)

    def test_failed_dependency_raises_inside_process(self, sim):
        def failer(sim):
            yield sim.timeout(1.0)
            raise ValueError("inner")

        caught = []

        def waiter(sim, target):
            try:
                yield target
            except ValueError as error:
                caught.append(str(error))
            return "survived"

        target = sim.spawn(failer(sim))
        process = sim.spawn(waiter(sim, target))
        assert sim.run(until=process) == "survived"
        assert caught == ["inner"]

    def test_deadlock_detected(self, sim):
        def stuck(sim):
            yield sim.event()  # nobody will ever trigger this

        process = sim.spawn(stuck(sim))
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=process)


class TestInterruption:
    def test_interrupt_wakes_sleeper(self, sim):
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        def killer(sim, victim):
            yield sim.timeout(2.0)
            victim.interrupt("no more")

        victim = sim.spawn(sleeper(sim))
        sim.spawn(killer(sim, victim))
        sim.run()
        assert log == [(2.0, "no more")]

    def test_interrupted_process_can_continue(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            return sim.now

        def killer(sim, victim):
            yield sim.timeout(5.0)
            victim.interrupt()

        victim = sim.spawn(sleeper(sim))
        sim.spawn(killer(sim, victim))
        assert sim.run(until=victim) == 6.0

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)

        process = sim.spawn(quick(sim))
        sim.run()
        process.interrupt("late")  # must not raise
        sim.run()

    def test_stale_event_does_not_double_resume(self, sim):
        """After an interrupt, the original wait target firing later must
        not resume the process a second time."""
        resumes = []

        def sleeper(sim):
            try:
                yield sim.timeout(10.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield sim.timeout(20.0)
            resumes.append("after")

        def killer(sim, victim):
            yield sim.timeout(1.0)
            victim.interrupt()

        victim = sim.spawn(sleeper(sim))
        sim.spawn(killer(sim, victim))
        sim.run()
        assert resumes == ["interrupt", "after"]


class TestInterruptRelayRace:
    """Regression: exactly-once delivery when an interrupt races the
    relay of an already-processed wait target.

    Pre-fix, ``_wait_on`` on a processed event set ``_waiting_on = None``
    before the relay fired, so ``interrupt()`` could not detach the relay
    callback — the process received the ``Interrupt`` and then had the
    stale original outcome delivered *again* at its next yield point.
    """

    def test_interrupt_on_processed_failed_event_delivers_once(self, sim):
        failed = sim.event()
        failed.fail(RuntimeError("original"))
        sim.run()

        deliveries = []

        def waiter(sim):
            try:
                yield failed
                deliveries.append("value")
            except Interrupt:
                deliveries.append("interrupt")
            except RuntimeError:
                deliveries.append("original")
            try:
                yield sim.timeout(5.0)
                deliveries.append("timeout-ok")
            except BaseException as error:  # noqa: BLE001
                deliveries.append(f"stale:{type(error).__name__}")

        process = sim.spawn(waiter(sim))
        process.interrupt("cancel")
        sim.run()
        assert deliveries == ["interrupt", "timeout-ok"]

    def test_interrupt_on_processed_succeeded_event_delivers_once(self, sim):
        done = sim.event()
        done.succeed("early")
        sim.run()

        deliveries = []

        def waiter(sim):
            try:
                value = yield done
                deliveries.append(("value", value))
            except Interrupt:
                deliveries.append("interrupt")
            got = yield sim.timeout(5.0, "tick")
            deliveries.append(("timeout", got, sim.now))

        process = sim.spawn(waiter(sim))
        process.interrupt()
        sim.run()
        assert deliveries == ["interrupt", ("timeout", "tick", 5.0)]

    def test_uninterrupted_processed_failure_still_delivered(self, sim):
        failed = sim.event()
        failed.fail(RuntimeError("original"))
        sim.run()

        caught = []

        def waiter(sim):
            try:
                yield failed
            except RuntimeError as error:
                caught.append(str(error))
            return "survived"

        process = sim.spawn(waiter(sim))
        assert sim.run(until=process) == "survived"
        assert caught == ["original"]


class TestInterruptDeliveryProperty:
    """Property: whatever the interrupt races against, every exception is
    delivered into the process exactly once and the heap drains clean."""

    @given(
        kind=st.sampled_from(
            ["timeout", "processed_ok", "processed_fail", "never"]
        ),
        immediate=st.booleans(),
        interrupt_delay=st.floats(
            min_value=0.0, max_value=8.0,
            allow_nan=False, allow_infinity=False,
        ),
        wait_delay=st.floats(
            min_value=0.0, max_value=6.0,
            allow_nan=False, allow_infinity=False,
        ),
    )
    def test_exactly_once_delivery(
        self, kind, immediate, interrupt_delay, wait_delay
    ):
        sim = Simulator()
        deliveries = []

        if kind == "processed_ok":
            target = sim.event()
            target.succeed("early")
            sim.run()
        elif kind == "processed_fail":
            target = sim.event()
            target.fail(RuntimeError("boom"))
            sim.run()
        elif kind == "never":
            target = sim.event()  # only the interrupt can free the waiter
        else:
            target = sim.timeout(wait_delay)

        def victim(sim):
            try:
                yield target
                deliveries.append("first-ok")
            except Interrupt:
                deliveries.append("first-interrupt")
            except RuntimeError:
                deliveries.append("first-fail")
            try:
                yield sim.timeout(3.0)
                deliveries.append("second-ok")
            except Interrupt:
                deliveries.append("second-interrupt")
            except RuntimeError:
                deliveries.append("second-fail")

        process = sim.spawn(victim(sim))
        if immediate:
            process.interrupt("now")
        else:

            def killer(sim):
                yield sim.timeout(interrupt_delay)
                process.interrupt("later")

            sim.spawn(killer(sim))
        sim.run()

        # Exactly one delivery per stage, never a stale second one.
        assert len(deliveries) == 2, deliveries
        assert deliveries[0].startswith("first-")
        assert deliveries[1].startswith("second-")
        # One interrupt was issued, so at most one can be delivered.
        assert deliveries.count("first-interrupt") + deliveries.count(
            "second-interrupt"
        ) <= 1
        # The target's failure can reach the process at most once, and
        # never at the second yield point (that would be the stale relay).
        assert deliveries.count("first-fail") <= 1
        assert "second-fail" not in deliveries
        # Heap consistency: the run drained every scheduled event and the
        # event counter is stable (no orphan callbacks left behind).
        assert sim.peek() == float("inf")
        assert not process.is_alive
        processed = sim.events_processed
        assert processed > 0
        sim.run()
        assert sim.events_processed == processed


class TestDeterminism:
    def test_same_timestamp_fifo_order(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.spawn(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_identical_runs_identical_traces(self):
        def trace_run():
            sim = Simulator()
            log = []

            def proc(sim, tag, delay):
                yield sim.timeout(delay)
                log.append((sim.now, tag))
                yield sim.timeout(delay)
                log.append((sim.now, tag))

            for i, delay in enumerate((2.0, 1.0, 3.0)):
                sim.spawn(proc(sim, f"p{i}", delay))
            sim.run()
            return log

        assert trace_run() == trace_run()


class TestCallAt:
    def test_runs_at_absolute_time(self, sim):
        seen = []
        sim.call_at(6.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [6.0]

    def test_past_time_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)
