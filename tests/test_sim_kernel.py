"""Unit tests for the simulation kernel (Simulator, Process)."""

import pytest

from repro.sim import Interrupt, SimulationError, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestClock:
    def test_starts_at_zero(self, sim):
        assert sim.now == 0.0

    def test_custom_start(self):
        assert Simulator(start=100.0).now == 100.0

    def test_run_until_time_advances_clock(self, sim):
        sim.timeout(3.0)
        sim.run(until=10.0)
        assert sim.now == 10.0

    def test_run_until_past_rejected(self, sim):
        sim.timeout(1.0)
        sim.run(until=5.0)
        with pytest.raises(SimulationError):
            sim.run(until=2.0)

    def test_peek_reports_next_event(self, sim):
        sim.timeout(7.0)
        assert sim.peek() == 7.0

    def test_peek_empty_is_inf(self, sim):
        assert sim.peek() == float("inf")

    def test_step_on_empty_heap_rejected(self, sim):
        with pytest.raises(SimulationError):
            sim.step()

    def test_events_processed_counts(self, sim):
        sim.timeout(1.0)
        sim.timeout(2.0)
        sim.run()
        assert sim.events_processed == 2


class TestProcess:
    def test_return_value_via_run(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            return "done"

        process = sim.spawn(proc(sim))
        assert sim.run(until=process) == "done"

    def test_requires_generator(self, sim):
        def not_a_generator():
            return 42

        with pytest.raises(TypeError):
            sim.spawn(not_a_generator)  # type: ignore[arg-type]

    def test_spawn_does_not_run_user_code_synchronously(self, sim):
        order = []

        def proc(sim):
            order.append("ran")
            yield sim.timeout(0)

        sim.spawn(proc(sim))
        assert order == []
        sim.run()
        assert order == ["ran"]

    def test_process_failure_propagates_to_run(self, sim):
        def proc(sim):
            yield sim.timeout(1.0)
            raise KeyError("missing")

        process = sim.spawn(proc(sim))
        with pytest.raises(KeyError):
            sim.run(until=process)

    def test_join_another_process(self, sim):
        def worker(sim):
            yield sim.timeout(4.0)
            return 99

        def parent(sim):
            worker_process = sim.spawn(worker(sim))
            value = yield worker_process
            return (sim.now, value)

        process = sim.spawn(parent(sim))
        assert sim.run(until=process) == (4.0, 99)

    def test_join_already_finished_process(self, sim):
        def worker(sim):
            yield sim.timeout(1.0)
            return "early"

        worker_process = sim.spawn(worker(sim))
        sim.run()

        def late_joiner(sim):
            value = yield worker_process
            return value

        process = sim.spawn(late_joiner(sim))
        assert sim.run(until=process) == "early"

    def test_yield_non_event_is_error(self, sim):
        def proc(sim):
            yield 42  # type: ignore[misc]

        process = sim.spawn(proc(sim))
        with pytest.raises(SimulationError):
            sim.run(until=process)

    def test_failed_dependency_raises_inside_process(self, sim):
        def failer(sim):
            yield sim.timeout(1.0)
            raise ValueError("inner")

        caught = []

        def waiter(sim, target):
            try:
                yield target
            except ValueError as error:
                caught.append(str(error))
            return "survived"

        target = sim.spawn(failer(sim))
        process = sim.spawn(waiter(sim, target))
        assert sim.run(until=process) == "survived"
        assert caught == ["inner"]

    def test_deadlock_detected(self, sim):
        def stuck(sim):
            yield sim.event()  # nobody will ever trigger this

        process = sim.spawn(stuck(sim))
        with pytest.raises(SimulationError, match="deadlock"):
            sim.run(until=process)


class TestInterruption:
    def test_interrupt_wakes_sleeper(self, sim):
        log = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                log.append((sim.now, interrupt.cause))

        def killer(sim, victim):
            yield sim.timeout(2.0)
            victim.interrupt("no more")

        victim = sim.spawn(sleeper(sim))
        sim.spawn(killer(sim, victim))
        sim.run()
        assert log == [(2.0, "no more")]

    def test_interrupted_process_can_continue(self, sim):
        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt:
                pass
            yield sim.timeout(1.0)
            return sim.now

        def killer(sim, victim):
            yield sim.timeout(5.0)
            victim.interrupt()

        victim = sim.spawn(sleeper(sim))
        sim.spawn(killer(sim, victim))
        assert sim.run(until=victim) == 6.0

    def test_interrupt_finished_process_is_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)

        process = sim.spawn(quick(sim))
        sim.run()
        process.interrupt("late")  # must not raise
        sim.run()

    def test_stale_event_does_not_double_resume(self, sim):
        """After an interrupt, the original wait target firing later must
        not resume the process a second time."""
        resumes = []

        def sleeper(sim):
            try:
                yield sim.timeout(10.0)
                resumes.append("timeout")
            except Interrupt:
                resumes.append("interrupt")
            yield sim.timeout(20.0)
            resumes.append("after")

        def killer(sim, victim):
            yield sim.timeout(1.0)
            victim.interrupt()

        victim = sim.spawn(sleeper(sim))
        sim.spawn(killer(sim, victim))
        sim.run()
        assert resumes == ["interrupt", "after"]


class TestDeterminism:
    def test_same_timestamp_fifo_order(self, sim):
        order = []

        def proc(sim, tag):
            yield sim.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            sim.spawn(proc(sim, tag))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_identical_runs_identical_traces(self):
        def trace_run():
            sim = Simulator()
            log = []

            def proc(sim, tag, delay):
                yield sim.timeout(delay)
                log.append((sim.now, tag))
                yield sim.timeout(delay)
                log.append((sim.now, tag))

            for i, delay in enumerate((2.0, 1.0, 3.0)):
                sim.spawn(proc(sim, f"p{i}", delay))
            sim.run()
            return log

        assert trace_run() == trace_run()


class TestCallAt:
    def test_runs_at_absolute_time(self, sim):
        seen = []
        sim.call_at(6.0, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [6.0]

    def test_past_time_rejected(self, sim):
        sim.timeout(5.0)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)
