"""Tests for the observed-signal demand path (oracle-free estimation)."""

import pytest

from repro.apps import Job, photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.core.demand import DemandModel
from repro.metrics import stable_digest
from repro.monitor import ObservedDemandFeed, attach_monitor
from repro.monitor.monitor import ObservedExecution
from repro.monitor.observed import observations_from_history
from repro.profiling.profiler import DemandObservation
from repro.serverless.function import FunctionSpec
from repro.telemetry import attach_tracer


class TestWorkForDuration:
    @pytest.mark.parametrize("memory_mb", [128.0, 1024.0, 1769.0, 3008.0])
    @pytest.mark.parametrize("parallel_fraction", [0.0, 0.5, 0.9])
    def test_exact_inverse_of_duration_for(self, memory_mb, parallel_fraction):
        spec = FunctionSpec(
            "f", memory_mb=memory_mb, parallel_fraction=parallel_fraction
        )
        for work in (0.5, 10.0, 400.0):
            duration = spec.duration_for(work)
            assert spec.work_for_duration(duration) == pytest.approx(
                work, rel=1e-9
            )

    def test_zero_duration_is_zero_work(self):
        assert FunctionSpec("f").work_for_duration(0.0) == 0.0

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            FunctionSpec("f").work_for_duration(-1.0)


class TestIngestHistory:
    def _model(self):
        return DemandModel(photo_backup_app())

    def test_known_components_are_ingested(self):
        model = self._model()
        component = model.app.component_names[0]
        n = model.ingest_history(
            [DemandObservation(component, 3.0, 10.0, at_time=1.0)]
        )
        assert n == 1
        assert model.estimators[component].observation_count == 1

    def test_unknown_components_are_skipped(self):
        model = self._model()
        component = model.app.component_names[0]
        n = model.ingest_history(
            [
                DemandObservation("not-a-component", 3.0, 10.0),
                DemandObservation(component, 3.0, 10.0),
            ]
        )
        assert n == 1

    def test_strict_mode_raises_on_unknown(self):
        with pytest.raises(KeyError, match="not-a-component"):
            self._model().ingest_history(
                [DemandObservation("not-a-component", 3.0, 10.0)],
                strict=True,
            )


class _SpecPlatform:
    """Stub platform: every function shares one deployed spec shape."""

    def __init__(self, memory_mb=1024.0):
        self.memory_mb = memory_mb

    def spec(self, name):
        return FunctionSpec(name, memory_mb=self.memory_mb)


def _execution(function, duration_s, at=10.0, memory_mb=1024.0, cold=False):
    return ObservedExecution(
        function=function, at=at, duration_s=duration_s,
        memory_mb=memory_mb, cold=cold,
    )


class TestObservationsFromHistory:
    def setup_method(self):
        self.app = photo_backup_app()
        self.component = self.app.component_names[0]
        self.function = f"{self.app.name}.{self.component}"
        self.platform = _SpecPlatform()

    def test_duration_inverts_to_gigacycles(self):
        spec = self.platform.spec(self.function)
        duration = spec.duration_for(25.0)
        rows = observations_from_history(
            [_execution(self.function, duration)],
            self.platform, self.app, input_mb=3.0,
        )
        assert len(rows) == 1
        assert rows[0].component == self.component
        assert rows[0].input_mb == 3.0
        assert rows[0].at_time == 10.0
        assert rows[0].measured_gcycles == pytest.approx(25.0, rel=1e-9)

    def test_other_apps_functions_are_skipped(self):
        rows = observations_from_history(
            [
                _execution("other_app.resize", 1.0),
                _execution(f"{self.app.name}.not-a-component", 1.0),
                _execution(self.function, 1.0),
            ],
            self.platform, self.app, input_mb=3.0,
        )
        assert [row.component for row in rows] == [self.component]

    def test_function_prefix_is_honoured(self):
        rows = observations_from_history(
            [_execution(f"v2-{self.function}", 1.0)],
            self.platform, self.app, input_mb=3.0, function_prefix="v2-",
        )
        assert len(rows) == 1
        assert observations_from_history(
            [_execution(self.function, 1.0)],
            self.platform, self.app, input_mb=3.0, function_prefix="v2-",
        ) == []

    def test_observed_memory_overrides_deployed_spec(self):
        # The record ran at a different memory size than the deployed
        # spec; inversion must use the observed size.
        spec = self.platform.spec(self.function).with_memory(2048.0)
        duration = spec.duration_for(25.0)
        rows = observations_from_history(
            [_execution(self.function, duration, memory_mb=2048.0)],
            self.platform, self.app, input_mb=3.0,
        )
        assert rows[0].measured_gcycles == pytest.approx(25.0, rel=1e-9)


class _HistoryMonitor:
    def __init__(self):
        self.executions = []


class TestObservedDemandFeed:
    def test_pump_ingests_each_record_exactly_once(self):
        app = photo_backup_app()
        component = app.component_names[0]
        function = f"{app.name}.{component}"
        monitor = _HistoryMonitor()
        feed = ObservedDemandFeed(monitor, _SpecPlatform(), app, input_mb=3.0)
        model = DemandModel(app)

        monitor.executions.append(_execution(function, 1.0))
        assert len(feed.pump(model)) == 1
        assert model.estimators[component].observation_count == 1

        # No new history: nothing pumped, nothing double-ingested.
        assert feed.pump(model) == []
        assert model.estimators[component].observation_count == 1

        monitor.executions.append(_execution(function, 2.0, at=20.0))
        fresh = feed.pump(model)
        assert [row.at_time for row in fresh] == [20.0]
        assert model.estimators[component].observation_count == 2


class TestControllerObservedMode:
    SEED = 4242

    def _run(self):
        env = Environment.build_custom(
            seed=self.SEED, uplink_bandwidth=2.0e6, access_latency_s=0.030
        )
        attach_tracer(env)
        monitor = attach_monitor(env)
        controller = OffloadController(
            env,
            photo_backup_app(),
            adaptive=True,
            replan_every=2,
            observed_signals=True,
            monitor=monitor,
        )
        error_blind = controller.demand.mean_relative_error(3.0)
        controller.profile_offline()  # must stay a no-op without an oracle
        assert controller.demand.mean_relative_error(3.0) == error_blind
        controller.plan(input_mb=3.0)
        jobs = [
            Job(controller.app, input_mb=3.0, released_at=60.0 * i,
                deadline=60.0 * i + 3600.0, job_id=8000 + i)
            for i in range(6)
        ]
        report = controller.run_workload(jobs)
        return {
            "completed": report.jobs_completed,
            "failures": len(report.failures),
            "error_blind": error_blind,
            "error_after": controller.demand.mean_relative_error(3.0),
            "digest": stable_digest(env.metrics.snapshot()),
        }

    def test_learns_in_flight_and_is_deterministic(self):
        first = self._run()
        assert first["completed"] == 6
        assert first["failures"] == 0
        # The unprofiled prior is badly wrong; monitored history fixes it.
        assert first["error_blind"] > 0.5
        assert first["error_after"] < 0.25
        assert self._run()["digest"] == first["digest"]
