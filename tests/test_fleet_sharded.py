"""Differential and property tests for the sharded fleet runner.

The core claim under test: for any topology without split links, the
merged sharded report is *byte-identical* to the single-process
reference, for every shard count and worker count.  Coupled topologies
partitioned atomically stay exact; split-coupled runs must land inside
the documented error bound.
"""

import os
import subprocess
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.sharded import (
    ShardedFleetSpec,
    reference_json,
    reference_report,
    run_sharded,
    shard_run,
)
from repro.fleet.topology import (
    FleetTopology,
    Zone,
    derive_seed,
    partition_topology,
)

CONNECTIVITIES = ["4g", "wifi", "3g"]


def small_spec(**kwargs):
    defaults = dict(window_s=600.0, slack_s=1200.0)
    defaults.update(kwargs)
    return ShardedFleetSpec(**defaults)


@st.composite
def topologies(draw, min_zones=1, max_zones=4, couple="none"):
    n_zones = draw(st.integers(min_zones, max_zones))
    zones = tuple(
        Zone(
            name=f"z{i:02d}",
            n_ues=draw(st.integers(0, 3)),
            connectivity=draw(st.sampled_from(CONNECTIVITIES)),
            jobs_per_ue=draw(st.integers(0, 2)),
        )
        for i in range(n_zones)
    )
    names = [zone.name for zone in zones]
    if couple == "none" or n_zones < 2:
        links = ()
    else:
        links = tuple(
            (names[i], names[i + 1]) for i in range(0, n_zones - 1, 2)
        )
    seed = draw(st.integers(0, 3))
    return FleetTopology(zones=zones, links=links, seed=seed)


class TestDifferential:
    """Sharded output vs the single-process reference, byte for byte."""

    @given(topology=topologies())
    @settings(max_examples=8, deadline=None)
    def test_uncoupled_byte_identical_across_shard_counts(self, topology):
        spec = small_spec(topology=topology)
        reference = reference_json(spec)
        reference_meter = reference_report(spec)["meter"]
        for n_shards in (1, 2, 4):
            result = run_sharded(spec, n_shards=n_shards)
            assert result.exact
            assert result.merged_json() == reference, (
                f"shards={n_shards} diverged from the reference"
            )
            # The runtime meter snapshot is part of the byte-identity
            # contract: counters are work-determined ints, so every
            # shard layout must sum to the same numbers.
            assert result.document["meter"] == reference_meter, (
                f"shards={n_shards} meter snapshot diverged"
            )
            # The O3 batch counter is simulated-work-determined like the
            # lane counters, so it must be shard-layout invariant too.
            assert (
                result.document["meter"]["batched_events"]
                == reference_meter["batched_events"]
            )

    @given(topology=topologies(min_zones=2, couple="pairs"))
    @settings(max_examples=6, deadline=None)
    def test_coupled_atomic_partition_stays_exact(self, topology):
        spec = small_spec(topology=topology)
        reference = reference_json(spec)
        for n_shards in (1, 2, 4):
            result = run_sharded(spec, n_shards=n_shards)
            assert result.plan.split_links == ()
            assert result.merged_json() == reference

    @given(topology=topologies(min_zones=4, max_zones=4, couple="pairs"))
    @settings(max_examples=4, deadline=None)
    def test_split_coupled_within_error_bound(self, topology):
        spec = small_spec(topology=topology)
        reference = reference_report(spec)["aggregates"]
        result = run_sharded(spec, n_shards=4, split_coupled=True)
        if result.exact:
            # The partitioner happened not to split anything; the run
            # must then be byte-exact like any other.
            assert result.merged_json() == reference_json(spec)
            return
        bound = result.error_bound
        sharded = result.aggregates
        assert (
            abs(sharded["cold_starts"] - reference["cold_starts"])
            <= bound["cold_starts"]
        )
        assert (
            abs(sharded["mean_response_s"] - reference["mean_response_s"])
            <= bound["mean_response_s"] + 1e-9
        )
        # Cold starts are not billed, so cost is preserved exactly
        # (up to float summation order).
        assert sharded["total_cloud_cost_usd"] == pytest.approx(
            reference["total_cloud_cost_usd"], abs=1e-12
        )
        assert bound["total_cloud_cost_usd"] == 0.0

    def test_multiprocess_workers_byte_identical(self):
        topology = FleetTopology.uniform(4, 2, jobs_per_ue=1, seed=11)
        spec = small_spec(topology=topology)
        reference = reference_json(spec)
        result = run_sharded(spec, n_shards=4, workers=2)
        assert result.merged_json() == reference
        serial = run_sharded(spec, n_shards=4, workers=1)
        assert result.document["meter"] == serial.document["meter"]

    def test_empty_and_zero_job_shards_merge(self):
        """More shards than zones plus zero-UE/zero-job zones: the
        degenerate shapes the empty-report fix exists for."""
        topology = FleetTopology(
            zones=(
                Zone(name="za", n_ues=0),
                Zone(name="zb", n_ues=2, jobs_per_ue=0),
                Zone(name="zc", n_ues=1, jobs_per_ue=1),
            ),
            seed=5,
        )
        spec = small_spec(topology=topology)
        reference = reference_json(spec)
        result = run_sharded(spec, n_shards=6)
        assert result.merged_json() == reference
        aggregates = result.aggregates
        assert aggregates["jobs_submitted"] == 1
        # Empty shards contribute 0.0, never NaN (canonical JSON would
        # reject NaN outright).
        assert aggregates["mean_response_s"] >= 0.0

    def test_shard_scenario_importable_by_reference(self):
        """The sweep machinery must resolve the scenario by name — the
        multiprocessing path imports it in the worker."""
        from repro.sweep.spec import resolve_scenario

        assert resolve_scenario("repro.fleet.sharded:shard_run") is shard_run
        assert (
            resolve_scenario("repro.sweep.scenarios:fleet_shard")({
                "spec": small_spec(
                    topology=FleetTopology.uniform(1, 1, seed=1)
                ).to_dict(),
                "zones": ["z000"],
                "shard": 0,
            })["groups"][0]["zones"]
            == ["z000"]
        )


class TestPartitioner:
    @given(topology=topologies(max_zones=6), n_shards=st.integers(1, 5))
    @settings(max_examples=30, deadline=None)
    def test_every_zone_exactly_once(self, topology, n_shards):
        plan = partition_topology(topology, n_shards)
        placed = sorted(name for shard in plan.shards for name in shard)
        assert placed == [zone.name for zone in topology.zones]
        total = sum(
            topology.zone(name).n_ues
            for shard in plan.shards
            for name in shard
        )
        assert total == topology.total_ues

    @given(
        topology=topologies(max_zones=6, couple="pairs"),
        n_shards=st.integers(1, 5),
        split=st.booleans(),
    )
    @settings(max_examples=30, deadline=None)
    def test_load_imbalance_within_documented_bound(
        self, topology, n_shards, split
    ):
        plan = partition_topology(topology, n_shards, split_coupled=split)
        loads = plan.loads()
        if split:
            unit_loads = [zone.expected_load for zone in topology.zones]
        else:
            unit_loads = [
                sum(topology.zone(n).expected_load for n in group)
                for group in topology.coupling_groups()
            ]
        mean = sum(loads) / len(loads)
        assert max(loads) <= mean + max(unit_loads, default=0.0) + 1e-9

    @given(topology=topologies(max_zones=5, couple="pairs"))
    @settings(max_examples=20, deadline=None)
    def test_atomic_partition_never_splits_links(self, topology):
        plan = partition_topology(topology, 3)
        assert plan.split_links == ()
        for a, b in topology.links:
            assert plan.shard_of(a) == plan.shard_of(b)

    def test_split_links_reported(self):
        topology = FleetTopology.uniform(4, 2, couple="pairs", seed=0)
        plan = partition_topology(topology, 4, split_coupled=True)
        for a, b in plan.split_links:
            assert plan.shard_of(a) != plan.shard_of(b)
        kept = set(topology.links) - set(plan.split_links)
        for a, b in kept:
            assert plan.shard_of(a) == plan.shard_of(b)

    def test_partition_hashseed_independent(self):
        """The plan must not depend on PYTHONHASHSEED — re-derive it in
        subprocesses with adversarial hash seeds and compare."""
        script = (
            "import json\n"
            "from repro.fleet.topology import FleetTopology, "
            "partition_topology\n"
            "topo = FleetTopology.uniform(7, 3, couple='pairs', seed=9,\n"
            "                             connectivity=['4g', 'wifi'])\n"
            "plan = partition_topology(topo, 3)\n"
            "print(json.dumps(plan.to_dict(), sort_keys=True))\n"
        )
        src = os.path.join(os.path.dirname(__file__), "..", "src")
        outputs = set()
        for hash_seed in ("0", "1", "31337"):
            env = dict(os.environ)
            env["PYTHONHASHSEED"] = hash_seed
            env["PYTHONPATH"] = os.path.abspath(src)
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True, env=env, check=True,
            )
            outputs.add(proc.stdout)
        assert len(outputs) == 1

    def test_derive_seed_stable_values(self):
        # Pin a value: a change here silently invalidates every cached
        # shard result and golden report.
        assert derive_seed(0, "zone", "z000") == derive_seed(0, "zone", "z000")
        assert derive_seed(0, "zone", "z000") != derive_seed(1, "zone", "z000")
        assert derive_seed(0, "zone", "z000") != derive_seed(0, "zone", "z001")
        assert derive_seed(3, "a", "b") == 15651734154061114772


class TestSpecRoundTrip:
    def test_spec_round_trips_through_dict(self):
        topology = FleetTopology.uniform(
            3, 2, connectivity=["wifi", "3g"], couple="ring", seed=4
        )
        spec = ShardedFleetSpec(
            topology=topology, app="photo_backup", input_mb=1.5,
            window_s=500.0, slack_s=700.0, keep_alive_s=120.0,
            sync_window_s=60.0,
        )
        assert ShardedFleetSpec.from_dict(spec.to_dict()) == spec

    def test_effective_window_clamped_to_keep_alive(self):
        spec = small_spec(
            topology=FleetTopology.uniform(1, 1),
            keep_alive_s=900.0, sync_window_s=60.0,
        )
        assert spec.effective_sync_window_s == 900.0

    def test_validation(self):
        topology = FleetTopology.uniform(1, 1)
        with pytest.raises(ValueError):
            ShardedFleetSpec(topology=topology, window_s=0.0)
        with pytest.raises(ValueError):
            ShardedFleetSpec(topology=topology, input_mb=-1.0)
        with pytest.raises(ValueError):
            run_sharded(small_spec(topology=topology), n_shards=0)
