"""Tests for the labeled metrics registry and its exporters."""

import json
import math

import pytest

from repro.telemetry import LabeledMetricsRegistry


class TestSeriesIdentity:
    def test_label_order_does_not_matter(self):
        reg = LabeledMetricsRegistry()
        a = reg.counter("jobs", app="photo", tier="cloud")
        b = reg.counter("jobs", tier="cloud", app="photo")
        assert a is b

    def test_different_labels_are_different_series(self):
        reg = LabeledMetricsRegistry()
        reg.counter("jobs", app="photo").increment()
        reg.counter("jobs", app="ocr").increment(2)
        snap = reg.snapshot()
        assert snap['jobs{app="photo"}'] == 1.0
        assert snap['jobs{app="ocr"}'] == 2.0

    def test_label_values_are_stringified(self):
        reg = LabeledMetricsRegistry()
        reg.gauge("depth", queue=3).set(7.0)
        assert reg.snapshot() == {'depth{queue="3"}': 7.0}

    def test_unlabeled_series_render_bare(self):
        reg = LabeledMetricsRegistry()
        reg.counter("events").increment()
        assert reg.series_names() == ["events"]

    @pytest.mark.parametrize("bad", ["", "na me", 'x"y', "a{b"])
    def test_invalid_metric_names_rejected(self, bad):
        with pytest.raises(ValueError, match="invalid metric name"):
            LabeledMetricsRegistry().counter(bad)

    def test_invalid_label_names_rejected(self):
        with pytest.raises(ValueError, match="invalid label name"):
            LabeledMetricsRegistry().counter("ok", **{"b ad": 1})


class TestSnapshot:
    def test_summary_expands_to_count_sum_quantiles(self):
        reg = LabeledMetricsRegistry()
        reg.summary("lat", tier="cloud").observe_many([1.0, 3.0])
        snap = reg.snapshot()
        assert snap['lat_count{tier="cloud"}'] == 2
        assert snap['lat_sum{tier="cloud"}'] == 4.0
        assert snap['lat{tier="cloud",quantile="0.5"}'] == 2.0
        assert snap['lat{tier="cloud",quantile="0.99"}'] == pytest.approx(2.98)

    def test_snapshot_keys_are_sorted(self):
        reg = LabeledMetricsRegistry()
        reg.counter("z").increment()
        reg.counter("a").increment()
        assert list(reg.snapshot()) == sorted(reg.snapshot())

    def test_to_json_is_stable_and_parseable(self):
        reg = LabeledMetricsRegistry()
        reg.counter("jobs", app="photo").increment()
        reg.gauge("battery").set(0.5)
        text = reg.to_json()
        assert text == reg.to_json()  # byte-stable
        assert json.loads(text) == reg.snapshot()
        assert "\n" not in text  # compact by default


class TestPrometheus:
    def test_counters_get_total_suffix(self):
        reg = LabeledMetricsRegistry()
        reg.counter("jobs", app="photo").increment(3)
        assert 'jobs_total{app="photo"} 3.0' in reg.to_prometheus()

    def test_existing_total_suffix_not_doubled(self):
        reg = LabeledMetricsRegistry()
        reg.counter("jobs_total").increment()
        out = reg.to_prometheus()
        assert "jobs_total 1.0" in out
        assert "jobs_total_total" not in out

    def test_families_sorted_with_trailing_newline(self):
        reg = LabeledMetricsRegistry()
        reg.gauge("z").set(1.0)
        reg.counter("a").increment()
        out = reg.to_prometheus()
        assert out.endswith("\n")
        samples = [
            line for line in out.strip().split("\n")
            if not line.startswith("#")
        ]
        assert samples == ["a_total 1.0", "z 1.0"]

    def test_help_and_type_precede_each_family(self):
        reg = LabeledMetricsRegistry()
        reg.counter("jobs", app="photo").increment()
        reg.gauge("battery").set(0.5)
        reg.summary("lat").observe(1.0)
        lines = reg.to_prometheus().strip().split("\n")
        for name, kind in [
            ("battery", "gauge"), ("jobs_total", "counter"),
            ("lat", "summary"),
        ]:
            type_line = f"# TYPE {name} {kind}"
            assert type_line in lines
            help_index = lines.index(f"# HELP {name} Simulated metric {name}.")
            assert lines[help_index + 1] == type_line
            assert not lines[help_index + 2].startswith("#")

    def test_summary_family_groups_quantiles_count_sum(self):
        reg = LabeledMetricsRegistry()
        reg.summary("lat", tier="cloud").observe_many([1.0, 3.0])
        out = reg.to_prometheus()
        type_lines = [l for l in out.split("\n") if l.startswith("# TYPE")]
        assert type_lines == ["# TYPE lat summary"]
        assert 'lat_count{tier="cloud"} 2' in out
        assert 'lat_sum{tier="cloud"} 4.0' in out
        assert 'lat{quantile="0.5",tier="cloud"}' not in out  # labels first
        assert 'lat{tier="cloud",quantile="0.5"} 2.0' in out

    def test_hostile_label_values_are_escaped(self):
        reg = LabeledMetricsRegistry()
        reg.counter(
            "jobs", app='evil"name', path="C:\\tmp", note="line1\nline2"
        ).increment()
        out = reg.to_prometheus()
        assert out.count("\n") == len(out.strip().split("\n"))  # no stray \n
        assert 'app="evil\\"name"' in out
        assert 'path="C:\\\\tmp"' in out
        assert 'note="line1\\nline2"' in out
        # The sample line stays a single parseable line.
        sample = [
            line for line in out.strip().split("\n")
            if not line.startswith("#")
        ]
        assert len(sample) == 1 and sample[0].endswith(" 1.0")

    def test_empty_registry_renders_empty(self):
        assert LabeledMetricsRegistry().to_prometheus() == ""


class TestValidationPropagates:
    def test_non_finite_rejected_through_labels(self):
        reg = LabeledMetricsRegistry()
        with pytest.raises(ValueError, match="finite"):
            reg.counter("c", app="x").increment(math.inf)
        with pytest.raises(ValueError, match="finite"):
            reg.gauge("g").set(math.nan)
        with pytest.raises(ValueError, match="finite"):
            reg.summary("s").observe(-math.inf)
