"""Tests for sliding-window aggregation."""

import pytest

from repro.monitor import WindowedSeries


class TestValidation:
    def test_bad_bucket(self):
        with pytest.raises(ValueError):
            WindowedSeries(bucket_s=0.0)

    def test_horizon_must_cover_a_bucket(self):
        with pytest.raises(ValueError):
            WindowedSeries(bucket_s=10.0, horizon_s=5.0)

    def test_bad_observation_time(self):
        series = WindowedSeries()
        with pytest.raises(ValueError):
            series.observe(-1.0)

    def test_bad_window(self):
        series = WindowedSeries()
        with pytest.raises(ValueError):
            series.aggregate(10.0, 0.0)


class TestAggregate:
    def test_counts_and_error_ratio(self):
        series = WindowedSeries(bucket_s=10.0)
        series.observe(1.0, bad=True)
        series.observe(2.0)
        series.observe(3.0)
        agg = series.aggregate(now=5.0, window_s=10.0)
        assert agg.count == 3
        assert agg.bad == 1
        assert agg.error_ratio == pytest.approx(1 / 3)
        assert agg.rate_per_s == pytest.approx(0.3)

    def test_window_excludes_old_buckets(self):
        series = WindowedSeries(bucket_s=10.0)
        series.observe(5.0, value=1.0)
        series.observe(95.0, value=3.0)
        agg = series.aggregate(now=100.0, window_s=30.0)
        assert agg.count == 1
        assert agg.mean == 3.0

    def test_window_is_bucket_aligned(self):
        # The oldest included bucket is the one containing now-window:
        # coverage is at least window_s, at most one extra bucket.
        series = WindowedSeries(bucket_s=10.0)
        series.observe(12.0)  # bucket [10, 20)
        agg = series.aggregate(now=75.0, window_s=60.0)  # covers from 15.0
        assert agg.count == 1  # bucket 10-20 intersects (15, 75]

    def test_mean_and_quantiles_only_from_valued_events(self):
        series = WindowedSeries()
        series.observe(1.0)  # no value
        series.observe(2.0, value=4.0)
        agg = series.aggregate(10.0, 60.0)
        assert agg.count == 2
        assert agg.mean == 4.0
        assert agg.quantile(0.5) == pytest.approx(4.0, rel=0.03)

    def test_empty_window(self):
        series = WindowedSeries()
        agg = series.aggregate(1000.0, 10.0)
        assert agg.count == 0
        assert agg.error_ratio == 0.0
        assert agg.mean == 0.0
        assert agg.quantile(0.5) is None

    def test_extras_sum_and_max(self):
        series = WindowedSeries(bucket_s=10.0)
        series.observe(1.0, extras={"bytes": 100.0}, extras_max={"depth": 2.0})
        series.observe(2.0, extras={"bytes": 50.0}, extras_max={"depth": 5.0})
        series.observe(15.0, extras={"bytes": 7.0}, extras_max={"depth": 1.0})
        agg = series.aggregate(20.0, 30.0)
        assert agg.extra("bytes") == 157.0
        assert agg.extra_max("depth") == 5.0
        assert agg.extra("missing") == 0.0
        assert agg.extra_max("missing", default=-1.0) == -1.0


class TestPruning:
    def test_old_buckets_are_pruned(self):
        series = WindowedSeries(bucket_s=10.0, horizon_s=100.0)
        for t in range(0, 1000, 10):
            series.observe(float(t))
        # Memory bounded by horizon: ~horizon/bucket (+ slack) buckets.
        assert len(series._buckets) <= int(100.0 / 10.0) + 2
        assert series.total_count == 100  # lifetime count survives pruning

    def test_recent_window_unaffected_by_pruning(self):
        series = WindowedSeries(bucket_s=10.0, horizon_s=100.0)
        for t in range(0, 500, 10):
            series.observe(float(t), value=1.0)
        agg = series.aggregate(now=495.0, window_s=50.0)
        assert agg.count == 6  # buckets 440..490 (bucket-aligned window)
