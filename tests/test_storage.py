"""Tests for the cloud object-store substrate."""

import pytest

from repro.sim import Simulator
from repro.storage import (
    ObjectNotFoundError,
    ObjectStore,
    StoragePricing,
)
from repro.storage.objectstore import SECONDS_PER_MONTH


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def store(sim):
    return ObjectStore(sim, request_latency_s=0.01)


class TestPricing:
    def test_defaults_s3_shaped(self):
        pricing = StoragePricing()
        assert pricing.egress_price_per_gb > 100 * pricing.intra_cloud_price_per_gb

    def test_validation(self):
        with pytest.raises(ValueError):
            StoragePricing(price_per_gb_month=-1)
        with pytest.raises(ValueError):
            StoragePricing().storage_cost(-1)
        with pytest.raises(ValueError):
            StoragePricing().transfer_cost(-1, external=True)

    def test_storage_cost_scales(self):
        pricing = StoragePricing(price_per_gb_month=0.023)
        # One GB for one month.
        assert pricing.storage_cost(SECONDS_PER_MONTH) == pytest.approx(0.023)

    def test_egress_vs_intra(self):
        pricing = StoragePricing(egress_price_per_gb=0.09,
                                 intra_cloud_price_per_gb=0.0)
        assert pricing.transfer_cost(1e9, external=True) == pytest.approx(0.09)
        assert pricing.transfer_cost(1e9, external=False) == 0.0


class TestOperations:
    def test_put_get_roundtrip(self, sim, store):
        def driver(sim):
            yield store.put("k", 1000.0)
            record = yield store.get("k")
            return record

        record = sim.run(until=sim.spawn(driver(sim)))
        assert record.nbytes == 1000.0
        assert "k" in store
        assert store.size_of("k") == 1000.0
        assert len(store) == 1

    def test_request_latency_charged(self, sim, store):
        def driver(sim):
            yield store.put("k", 10.0)
            yield store.get("k")

        sim.run(until=sim.spawn(driver(sim)))
        assert sim.now == pytest.approx(0.02)

    def test_get_missing_raises(self, sim, store):
        process = store.get("ghost")
        with pytest.raises(ObjectNotFoundError):
            sim.run(until=process)

    def test_delete(self, sim, store):
        sim.run(until=store.put("k", 10.0))
        store.delete("k")
        assert "k" not in store
        with pytest.raises(ObjectNotFoundError):
            store.delete("k")

    def test_overwrite_replaces(self, sim, store):
        def driver(sim):
            yield store.put("k", 10.0)
            yield store.put("k", 99.0)

        sim.run(until=sim.spawn(driver(sim)))
        assert store.size_of("k") == 99.0
        assert len(store) == 1

    def test_keys_sorted(self, sim, store):
        def driver(sim):
            yield store.put("zeta", 1.0)
            yield store.put("alpha", 1.0)

        sim.run(until=sim.spawn(driver(sim)))
        assert store.keys() == ["alpha", "zeta"]

    def test_negative_size_rejected(self, store):
        with pytest.raises(ValueError):
            store.put("k", -1.0)


class TestBilling:
    def test_request_fees_accumulate(self, sim):
        pricing = StoragePricing(price_per_put=1e-3, price_per_get=1e-4,
                                 price_per_gb_month=0.0, egress_price_per_gb=0.0)
        store = ObjectStore(sim, pricing, request_latency_s=0.0)

        def driver(sim):
            yield store.put("k", 10.0)
            yield store.get("k")
            yield store.get("k")

        sim.run(until=sim.spawn(driver(sim)))
        assert store.total_cost() == pytest.approx(1e-3 + 2e-4)

    def test_egress_charged_only_when_external(self, sim):
        pricing = StoragePricing(price_per_put=0, price_per_get=0,
                                 price_per_gb_month=0, egress_price_per_gb=0.09)
        store = ObjectStore(sim, pricing, request_latency_s=0.0)

        def driver(sim):
            yield store.put("k", 1e9)
            yield store.get("k", external=False)
            internal_cost = store.total_cost()
            yield store.get("k", external=True)
            return internal_cost

        internal_cost = sim.run(until=sim.spawn(driver(sim)))
        assert internal_cost == 0.0
        assert store.total_cost() == pytest.approx(0.09)

    def test_storage_time_billed(self, sim):
        pricing = StoragePricing(price_per_put=0, price_per_get=0,
                                 price_per_gb_month=0.023,
                                 egress_price_per_gb=0.0)
        store = ObjectStore(sim, pricing, request_latency_s=0.0)
        sim.run(until=store.put("k", 1e9))
        sim.timeout(SECONDS_PER_MONTH)
        sim.run()
        assert store.total_cost() == pytest.approx(0.023, rel=1e-6)

    def test_retired_objects_keep_their_storage_time(self, sim):
        pricing = StoragePricing(price_per_put=0, price_per_get=0,
                                 price_per_gb_month=0.023,
                                 egress_price_per_gb=0.0)
        store = ObjectStore(sim, pricing, request_latency_s=0.0)
        sim.run(until=store.put("k", 1e9))
        sim.timeout(SECONDS_PER_MONTH / 2)
        sim.run()
        store.delete("k")
        sim.timeout(SECONDS_PER_MONTH)  # long after deletion
        sim.run()
        assert store.total_cost() == pytest.approx(0.0115, rel=1e-6)

    def test_stored_bytes(self, sim, store):
        def driver(sim):
            yield store.put("a", 100.0)
            yield store.put("b", 200.0)

        sim.run(until=sim.spawn(driver(sim)))
        assert store.stored_bytes == 300.0


class TestControllerIntegration:
    def test_storage_environment_routes_and_bills(self):
        from repro import Environment, Job, OffloadController, photo_backup_app

        env = Environment.build(seed=4, with_storage=True)
        controller = OffloadController(env, photo_backup_app())
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        report = controller.run_workload(
            [Job(controller.app, input_mb=4.0, deadline=3600.0)]
        )
        assert report.jobs_completed == 1
        # Staged edges left nothing behind and the store billed something.
        assert len(env.storage) == 0
        assert env.storage.total_cost() > 0

    def test_storage_makes_job_cost_higher(self):
        from repro import Environment, Job, OffloadController, photo_backup_app

        def run(with_storage):
            env = Environment.build(seed=4, with_storage=with_storage)
            controller = OffloadController(env, photo_backup_app())
            controller.profile_offline()
            controller.plan(input_mb=4.0)
            report = controller.run_workload(
                [Job(controller.app, input_mb=4.0, deadline=3600.0)]
            )
            return report.results[0].cloud_cost_usd

        assert run(True) > run(False)

    def test_egress_price_steers_partition(self):
        """With egress at absurd prices, the planner avoids cutting
        cloud→local edges that carry real data."""
        from repro import Environment, OffloadController, photo_backup_app
        from repro.storage import StoragePricing

        expensive = Environment.build(
            seed=4,
            storage_pricing=StoragePricing(egress_price_per_gb=1e5),
        )
        controller = OffloadController(expensive, photo_backup_app())
        controller.profile_offline()
        context = controller.build_context(4.0)
        assert context.egress_price_per_gb == 1e5
        partition = controller.partitioner.partition(context)
        # Every cloud→local edge must carry (almost) no data.
        app = controller.app
        for flow in app.flows:
            if partition.is_cloud(flow.src) and not partition.is_cloud(flow.dst):
                assert flow.bytes_for(4.0) < 10_000, (flow.src, flow.dst)
