"""Tests for synthetic application generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    fanout_fanin_app,
    layered_random_app,
    linear_pipeline_app,
    random_tree_app,
)
from repro.sim.rng import RngStream


class TestLinearPipeline:
    def test_shape(self):
        app = linear_pipeline_app(5, RngStream(0))
        assert len(app) == 5
        assert len(app.flows) == 4
        assert app.is_tree()

    def test_endpoints_pinned(self):
        app = linear_pipeline_app(4, RngStream(0))
        assert app.pinned_names() == ["s0", "s3"]

    def test_minimum_stages(self):
        with pytest.raises(ValueError):
            linear_pipeline_app(1, RngStream(0))

    def test_reproducible(self):
        a = linear_pipeline_app(5, RngStream(7))
        b = linear_pipeline_app(5, RngStream(7))
        for name in a.component_names:
            assert a.component(name).work_gcycles == b.component(name).work_gcycles


class TestFanoutFanin:
    def test_shape(self):
        app = fanout_fanin_app(4, RngStream(1))
        assert len(app) == 6  # source + 4 workers + sink
        assert len(app.flows) == 8
        assert app.entry_components == ["source"]
        assert app.exit_components == ["sink"]

    def test_width_validation(self):
        with pytest.raises(ValueError):
            fanout_fanin_app(0, RngStream(0))

    def test_width_one_is_pipeline(self):
        app = fanout_fanin_app(1, RngStream(2))
        assert len(app) == 3
        assert app.is_tree()


class TestRandomTree:
    @given(n=st.integers(min_value=1, max_value=30), seed=st.integers(0, 100))
    @settings(max_examples=30, deadline=None)
    def test_always_a_tree(self, n, seed):
        app = random_tree_app(n, RngStream(seed))
        assert len(app) == n
        assert len(app.flows) == n - 1
        assert app.is_tree()

    def test_root_pinned(self):
        app = random_tree_app(6, RngStream(3))
        assert "c0" in app.pinned_names()

    def test_validation(self):
        with pytest.raises(ValueError):
            random_tree_app(0, RngStream(0))


class TestLayeredRandom:
    @given(
        layers=st.integers(min_value=2, max_value=6),
        width=st.integers(min_value=1, max_value=5),
        probability=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_structure_invariants(self, layers, width, probability, seed):
        app = layered_random_app(layers, width, RngStream(seed), probability)
        expected = 2 + (layers - 2) * width
        assert len(app) == expected
        # Acyclicity is enforced by AppGraph itself; every non-entry
        # component must be reachable (has at least one predecessor).
        for name in app.component_names:
            if name != "entry":
                assert app.predecessors(name), f"{name} unreachable"

    def test_validation(self):
        rng = RngStream(0)
        with pytest.raises(ValueError):
            layered_random_app(1, 2, rng)
        with pytest.raises(ValueError):
            layered_random_app(3, 0, rng)
        with pytest.raises(ValueError):
            layered_random_app(3, 2, rng, edge_probability=1.5)

    def test_entry_exit_pinned(self):
        app = layered_random_app(4, 3, RngStream(5))
        assert set(app.pinned_names()) == {"entry", "exit"}


class TestScaleParameters:
    def test_work_scale_increases_demand(self):
        light = linear_pipeline_app(6, RngStream(9), work_scale=1.0)
        heavy = linear_pipeline_app(6, RngStream(9), work_scale=10.0)
        assert heavy.total_work(1.0) > light.total_work(1.0)

    def test_custom_name(self):
        app = random_tree_app(3, RngStream(0), name="custom")
        assert app.name == "custom"
