"""Tests for the partitioning module (contribution C3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import (
    AppGraph,
    Component,
    DataFlow,
    ml_training_app,
    nightly_analytics_app,
    photo_backup_app,
    random_tree_app,
)
from repro.core.partitioning import (
    ExhaustivePartitioner,
    FixedPartitioner,
    GreedyPartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    Partition,
    PartitionContext,
    TreeDPPartitioner,
    evaluate_partition,
    pareto_front,
)
from repro.sim.rng import RngStream


def make_context(app, input_mb=2.0, uplink_bps=1.25e6, weights=None, **kwargs):
    work = {c.name: c.work_for(input_mb) for c in app.components}
    return PartitionContext(
        app=app,
        input_mb=input_mb,
        work=work,
        uplink_bps=uplink_bps,
        weights=weights or ObjectiveWeights(),
        **kwargs,
    )


def two_stage_app(offloadable_b=True):
    return AppGraph(
        "two",
        [
            Component("a", work_gcycles=1.2, offloadable=False),
            Component("b", work_gcycles=12.0, offloadable=offloadable_b),
        ],
        [DataFlow("a", "b", bytes_fixed=1e6)],
    )


class TestObjectiveWeights:
    def test_combine(self):
        weights = ObjectiveWeights(1.0, 2.0, 3.0)
        assert weights.combine(1.0, 1.0, 1.0) == 6.0

    def test_presets_ordering(self):
        interactive = ObjectiveWeights.interactive()
        relaxed = ObjectiveWeights.non_time_critical()
        assert interactive.latency_weight > relaxed.latency_weight
        assert relaxed.cost_weight > interactive.cost_weight

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ObjectiveWeights(latency_weight=-1.0)


class TestPartition:
    def test_constructors(self):
        app = photo_backup_app()
        assert Partition.local_only(app).cloud == frozenset()
        full = Partition.full_offload(app)
        assert "capture" not in full.cloud
        assert "transcode" in full.cloud

    def test_validate_unknown(self):
        app = photo_backup_app()
        with pytest.raises(ValueError):
            Partition(app.name, frozenset({"ghost"})).validate(app)

    def test_validate_pinned(self):
        app = photo_backup_app()
        with pytest.raises(ValueError):
            Partition(app.name, frozenset({"capture"})).validate(app)

    def test_moved_flips(self):
        partition = Partition("x", frozenset({"a"}))
        assert partition.moved("a").cloud == frozenset()
        assert partition.moved("b").cloud == frozenset({"a", "b"})


class TestEvaluation:
    def test_local_only_hand_computed(self):
        app = two_stage_app()
        ctx = make_context(app, input_mb=0.0, ue_cycles_per_second=1.2e9)
        evaluation = evaluate_partition(ctx, Partition.local_only(app))
        # a: 1.2 gc / 1.2 GHz = 1 s; b: 12 gc -> 10 s; no transfers.
        assert evaluation.serialized_latency_s == pytest.approx(11.0)
        assert evaluation.makespan_s == pytest.approx(11.0)
        assert evaluation.cloud_cost_usd == 0.0
        assert evaluation.ue_energy_j == pytest.approx(0.9 * 11.0)

    def test_offload_hand_computed(self):
        app = two_stage_app()
        ctx = make_context(
            app,
            input_mb=0.0,
            ue_cycles_per_second=1.2e9,
            uplink_bps=1e6,
            uplink_latency_s=0.1,
        )
        evaluation = evaluate_partition(
            ctx, Partition(app.name, frozenset({"b"}))
        )
        # a local: 1 s. Transfer 1e6 B at 1e6 B/s + 0.1 = 1.1 s.
        # b in cloud at 1769 MB: 12/2.4 = 5 s.
        assert evaluation.serialized_latency_s == pytest.approx(1.0 + 1.1 + 5.0)
        assert evaluation.makespan_s == pytest.approx(7.1)
        expected_energy = 0.9 * 1.0 + 1.3 * 1.1 + 0.025 * 5.0
        assert evaluation.ue_energy_j == pytest.approx(expected_energy)
        assert evaluation.cloud_cost_usd > 0

    def test_makespan_below_serialized_for_parallel_dag(self):
        app = AppGraph(
            "par",
            [Component("s", offloadable=False), Component("x"), Component("y")],
            [DataFlow("s", "x"), DataFlow("s", "y")],
        )
        ctx = make_context(app)
        evaluation = evaluate_partition(ctx, Partition.local_only(app))
        assert evaluation.makespan_s < evaluation.serialized_latency_s

    def test_idle_energy_toggle(self):
        app = two_stage_app()
        with_idle = make_context(app, include_idle_energy=True)
        without_idle = make_context(app, include_idle_energy=False)
        partition = Partition(app.name, frozenset({"b"}))
        assert (
            evaluate_partition(with_idle, partition).ue_energy_j
            > evaluate_partition(without_idle, partition).ue_energy_j
        )

    def test_context_validation(self):
        app = two_stage_app()
        with pytest.raises(ValueError):
            PartitionContext(app=app, input_mb=1.0, work={"a": 1.0})  # missing b
        with pytest.raises(ValueError):
            make_context(app, ue_cycles_per_second=0.0)


class TestOptimality:
    """Exact methods must match exhaustive enumeration."""

    @pytest.mark.parametrize(
        "factory", [photo_backup_app, nightly_analytics_app, ml_training_app]
    )
    @pytest.mark.parametrize("uplink_bps", [1e5, 1.25e6, 1.25e7])
    def test_mincut_matches_exhaustive(self, factory, uplink_bps):
        ctx = make_context(factory(), uplink_bps=uplink_bps)
        exact = ExhaustivePartitioner().evaluate(ctx)
        mincut = MinCutPartitioner().evaluate(ctx)
        assert mincut.objective == pytest.approx(exact.objective, rel=1e-7)

    @pytest.mark.parametrize(
        "factory", [nightly_analytics_app, ml_training_app]
    )
    def test_treedp_matches_exhaustive_on_trees(self, factory):
        ctx = make_context(factory())
        exact = ExhaustivePartitioner().evaluate(ctx)
        tree = TreeDPPartitioner().evaluate(ctx)
        assert tree.objective == pytest.approx(exact.objective, rel=1e-7)

    def test_treedp_rejects_non_tree(self):
        ctx = make_context(photo_backup_app())
        with pytest.raises(ValueError):
            TreeDPPartitioner().partition(ctx)

    @given(
        n=st.integers(min_value=2, max_value=9),
        seed=st.integers(min_value=0, max_value=200),
        uplink=st.sampled_from([2e5, 1.25e6, 1e7]),
    )
    @settings(max_examples=25, deadline=None)
    def test_mincut_and_dp_optimal_on_random_trees(self, n, seed, uplink):
        app = random_tree_app(n, RngStream(seed))
        ctx = make_context(app, uplink_bps=uplink)
        exact = ExhaustivePartitioner().evaluate(ctx).objective
        assert MinCutPartitioner().evaluate(ctx).objective == pytest.approx(
            exact, rel=1e-7
        )
        assert TreeDPPartitioner().evaluate(ctx).objective == pytest.approx(
            exact, rel=1e-7
        )

    def test_greedy_close_to_optimal(self):
        ctx = make_context(photo_backup_app())
        exact = ExhaustivePartitioner().evaluate(ctx).objective
        greedy = GreedyPartitioner().evaluate(ctx).objective
        assert greedy <= exact * 1.10

    def test_mincut_partition_cost_equals_cut_value(self):
        """Regression: with float capacities, networkx can return a
        *correct cut value* but a partition whose cost exceeds it
        (residual reachability without tolerance).  The integer-scaled
        formulation must return a partition whose evaluated objective
        matches the optimum on this specific instance (pipeline #11 of
        seed 101 at 0.25 MB/s, which triggered the bug)."""
        from repro.apps import linear_pipeline_app

        rng = RngStream(101)
        apps = [linear_pipeline_app(8, rng) for _ in range(12)]
        app = apps[11]
        ctx = make_context(app, input_mb=3.0, uplink_bps=2.5e5)
        exact = ExhaustivePartitioner().evaluate(ctx)
        mincut = MinCutPartitioner().evaluate(ctx)
        assert mincut.objective == pytest.approx(exact.objective, rel=1e-7)
        assert mincut.partition.cloud == exact.partition.cloud

    def test_exhaustive_size_cap(self):
        app = random_tree_app(25, RngStream(0))
        ctx = make_context(app)
        with pytest.raises(ValueError):
            ExhaustivePartitioner(max_offloadable=10).partition(ctx)


class TestBehaviouralShapes:
    def test_low_bandwidth_forces_local(self):
        """At dial-up rates, cutting any heavy edge is prohibitive."""
        app = photo_backup_app()
        slow = make_context(app, uplink_bps=1e3, weights=ObjectiveWeights.interactive())
        partition = MinCutPartitioner().partition(slow)
        assert len(partition.cloud) == 0

    def test_high_bandwidth_encourages_offload(self):
        app = photo_backup_app()
        fast = make_context(app, uplink_bps=1.25e8)
        partition = MinCutPartitioner().partition(fast)
        assert len(partition.cloud) >= 3

    def test_pinned_components_never_offloaded(self):
        for uplink in (1e3, 1e6, 1e9):
            ctx = make_context(ml_training_app(), uplink_bps=uplink)
            partition = MinCutPartitioner().partition(ctx)
            assert "sample_data" not in partition.cloud
            assert "apply_update" not in partition.cloud

    def test_weights_steer_the_cut(self):
        """Latency-dominant weights offload less than cost-dominant ones
        on a slow uplink (transfers hurt latency, cloud compute is cheap)."""
        app = ml_training_app()
        slow = 2.5e5
        latency_ctx = make_context(
            app, uplink_bps=slow, weights=ObjectiveWeights(10.0, 0.0, 0.0)
        )
        energy_ctx = make_context(
            app, uplink_bps=slow, weights=ObjectiveWeights(0.0, 10.0, 0.0)
        )
        latency_cut = MinCutPartitioner().partition(latency_ctx)
        energy_cut = MinCutPartitioner().partition(energy_ctx)
        assert len(energy_cut.cloud) >= len(latency_cut.cloud)


class TestSimulatedAnnealing:
    def test_never_worse_than_mincut_seed(self):
        from repro.core.partitioning import SimulatedAnnealingPartitioner

        for seed in (0, 1, 2):
            app = random_tree_app(8, RngStream(seed))
            ctx = make_context(app)

            def makespan_score(partition):
                evaluation = evaluate_partition(ctx, partition)
                return ctx.weights.combine(
                    evaluation.makespan_s,
                    evaluation.ue_energy_j,
                    evaluation.cloud_cost_usd,
                )

            mincut_score = makespan_score(MinCutPartitioner().partition(ctx))
            annealed = SimulatedAnnealingPartitioner(
                RngStream(seed + 50), iterations=300
            ).partition(ctx)
            assert makespan_score(annealed) <= mincut_score + 1e-9

    def test_matches_exhaustive_makespan_on_small_graphs(self):
        from repro.apps import fanout_fanin_app
        from repro.core.partitioning import SimulatedAnnealingPartitioner

        app = fanout_fanin_app(4, RngStream(11))
        ctx = make_context(app, weights=ObjectiveWeights.interactive())

        def makespan_score(partition):
            evaluation = evaluate_partition(ctx, partition)
            return ctx.weights.combine(
                evaluation.makespan_s,
                evaluation.ue_energy_j,
                evaluation.cloud_cost_usd,
            )

        optimal = makespan_score(
            ExhaustivePartitioner(use_makespan=True).partition(ctx)
        )
        annealed = makespan_score(
            SimulatedAnnealingPartitioner(RngStream(7), iterations=800).partition(ctx)
        )
        assert annealed == pytest.approx(optimal, rel=1e-6)

    def test_respects_pins(self):
        from repro.core.partitioning import SimulatedAnnealingPartitioner

        ctx = make_context(photo_backup_app())
        partition = SimulatedAnnealingPartitioner(
            RngStream(3), iterations=200
        ).partition(ctx)
        partition.validate(ctx.app)

    def test_validation(self):
        from repro.core.partitioning import SimulatedAnnealingPartitioner

        with pytest.raises(ValueError):
            SimulatedAnnealingPartitioner(RngStream(0), iterations=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingPartitioner(RngStream(0), initial_temperature=0)
        with pytest.raises(ValueError):
            SimulatedAnnealingPartitioner(RngStream(0), cooling=1.0)

    def test_deterministic_given_stream(self):
        from repro.core.partitioning import SimulatedAnnealingPartitioner

        ctx = make_context(photo_backup_app())
        a = SimulatedAnnealingPartitioner(RngStream(9), iterations=200).partition(ctx)
        b = SimulatedAnnealingPartitioner(RngStream(9), iterations=200).partition(ctx)
        assert a == b


class TestFixedPartitioner:
    def test_returns_given(self):
        app = photo_backup_app()
        fixed = FixedPartitioner(Partition.full_offload(app))
        ctx = make_context(app)
        assert fixed.partition(ctx) == Partition.full_offload(app)

    def test_validates(self):
        app = photo_backup_app()
        fixed = FixedPartitioner(Partition(app.name, frozenset({"capture"})))
        with pytest.raises(ValueError):
            fixed.partition(make_context(app))


class TestParetoFront:
    def test_dominated_removed(self):
        app = two_stage_app()
        ctx = make_context(app)
        evaluations = [
            evaluate_partition(ctx, Partition.local_only(app)),
            evaluate_partition(ctx, Partition(app.name, frozenset({"b"}))),
        ]
        front = pareto_front(evaluations)
        assert 1 <= len(front) <= 2
        for kept in front:
            assert not any(other.dominates(kept) for other in evaluations)
