"""Tests for the CI/CD offload pipeline (contribution C4)."""

import pytest

from repro import Environment
from repro.apps import nightly_analytics_app
from repro.apps.graph import Component
from repro.cicd import SourceRepository
from repro.core.pipeline import OffloadPipeline, PipelineConfig


def make_pipeline(seed=0, config=None, app=None):
    env = Environment.build(seed=seed, connectivity="4g")
    app = app or nightly_analytics_app()
    repo = SourceRepository("analytics", app)
    return OffloadPipeline(
        env, repo, config=config or PipelineConfig(canary_jobs=2)
    )


EXPECTED_STAGES = [
    "checkout",
    "build",
    "test",
    "profile",
    "partition",
    "allocate",
    "deploy-canary",
    "canary",
    "promote",
]


class TestHappyPath:
    def test_first_run_promotes(self):
        pipeline = make_pipeline()
        run = pipeline.run_to_completion()
        assert run.ok
        assert run.promoted
        assert [s.name for s in run.stages] == EXPECTED_STAGES
        assert pipeline.production_revision == run.revision
        assert pipeline.production_baseline is not None

    def test_partition_and_allocation_recorded(self):
        pipeline = make_pipeline()
        run = pipeline.run_to_completion()
        assert run.partition is not None
        assert set(run.allocation) == set(run.partition.cloud)
        assert run.canary_mean_response_s > 0
        assert run.canary_mean_cost_usd >= 0

    def test_canary_functions_deployed_in_namespace(self):
        pipeline = make_pipeline()
        run = pipeline.run_to_completion()
        platform = pipeline.env.platform
        for component in run.partition.cloud:
            assert platform.is_deployed(f"canary.nightly_analytics.{component}")

    def test_stage_lookup(self):
        run = make_pipeline().run_to_completion()
        assert run.stage("build").duration_s > 0
        with pytest.raises(KeyError):
            run.stage("ghost")

    def test_total_duration_positive(self):
        run = make_pipeline().run_to_completion()
        assert run.total_duration_s > 0
        assert run.stage("profile").duration_s > 0


class TestRegressionGate:
    def test_regression_abandoned(self):
        pipeline = make_pipeline()
        good = pipeline.run_to_completion()
        assert good.promoted

        app = pipeline.repo.head.app
        bad = app.with_component(
            Component(
                "aggregate",
                work_gcycles=60.0,
                work_gcycles_per_mb=80.0,
                parallel_fraction=0.85,
                package_mb=80,
            )
        )
        pipeline.repo.commit(bad, "10x regression")
        run = pipeline.run_to_completion()
        assert not run.promoted
        assert run.stages[-1].name == "abandon"
        assert pipeline.production_revision == good.revision

    def test_equivalent_revision_promotes(self):
        pipeline = make_pipeline()
        first = pipeline.run_to_completion()
        app = pipeline.repo.head.app
        # A near-identical revision: +1% work on one light component.
        report = app.component("report")
        from dataclasses import replace

        same = app.with_component(
            replace(report, work_gcycles=report.work_gcycles * 1.01)
        )
        pipeline.repo.commit(same, "minor change")
        second = pipeline.run_to_completion()
        assert second.promoted
        assert pipeline.production_revision == second.revision != first.revision

    def test_threshold_controls_sensitivity(self):
        """With an enormous threshold even a big regression promotes."""
        pipeline = make_pipeline(
            config=PipelineConfig(canary_jobs=2, regression_threshold=100.0)
        )
        pipeline.run_to_completion()
        app = pipeline.repo.head.app
        bad = app.with_component(
            Component(
                "aggregate", work_gcycles=60.0, work_gcycles_per_mb=80.0,
                parallel_fraction=0.85, package_mb=80,
            )
        )
        pipeline.repo.commit(bad, "regression")
        run = pipeline.run_to_completion()
        assert run.promoted


class TestConventionalMode:
    def test_offload_stages_skipped(self):
        pipeline = make_pipeline(
            config=PipelineConfig(canary_jobs=1, offload_stages_enabled=False)
        )
        run = pipeline.run_to_completion()
        assert [s.name for s in run.stages] == ["checkout", "build", "test"]
        assert run.promoted
        assert run.partition is None

    def test_offload_overhead_is_bounded(self):
        """The offloading stages must not blow up pipeline duration by
        more than ~10x over the plain build+test flow."""
        with_offload = make_pipeline(seed=1).run_to_completion()
        without = make_pipeline(
            seed=1,
            config=PipelineConfig(canary_jobs=2, offload_stages_enabled=False),
        ).run_to_completion()
        assert with_offload.total_duration_s < 10 * without.total_duration_s


class TestConfigValidation:
    def test_canary_jobs_positive(self):
        with pytest.raises(ValueError):
            PipelineConfig(canary_jobs=0)

    def test_threshold_nonnegative(self):
        with pytest.raises(ValueError):
            PipelineConfig(regression_threshold=-0.1)

    def test_run_specific_revision(self):
        pipeline = make_pipeline()
        revision = pipeline.repo.head.revision
        run = pipeline.run_to_completion(revision)
        assert run.revision == revision
