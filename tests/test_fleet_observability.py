"""Fleet observability: merged snapshots, SLO rollups, alert-log bytes.

The headline property mirrors the sharding contract: when no coupling
link is split, the merged fleet *health* document — SLO verdicts,
per-zone rollups, and the alert log — is byte-identical for any shard
count and worker count, and equal to the single-process reference.
Chaos schedules are part of the property: injected faults are keyed to
sim time per device, so they cannot tell shard layouts apart.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.fleet.sharded import (
    FLEET_CHAOS,
    ShardedFleetSpec,
    reference_health,
    run_sharded,
)
from repro.fleet.topology import FleetTopology, Zone
from repro.monitor import fleet_health_to_prometheus

CONNECTIVITIES = ["4g", "wifi", "3g"]


def small_spec(**kwargs):
    defaults = dict(window_s=600.0, slack_s=1200.0, monitor=True)
    defaults.update(kwargs)
    return ShardedFleetSpec(**defaults)


@st.composite
def topologies(draw, min_zones=1, max_zones=4, couple="none"):
    n_zones = draw(st.integers(min_zones, max_zones))
    zones = tuple(
        Zone(
            name=f"z{i:02d}",
            n_ues=draw(st.integers(0, 2)),
            connectivity=draw(st.sampled_from(CONNECTIVITIES)),
            jobs_per_ue=draw(st.integers(0, 1)),
        )
        for i in range(n_zones)
    )
    names = [zone.name for zone in zones]
    if couple == "none" or n_zones < 2:
        links = ()
    else:
        links = tuple(
            (names[i], names[i + 1]) for i in range(0, n_zones - 1, 2)
        )
    seed = draw(st.integers(0, 3))
    return FleetTopology(zones=zones, links=links, seed=seed)


RING = FleetTopology(
    zones=tuple(
        Zone(name=f"z{i:02d}", n_ues=2, connectivity="4g", jobs_per_ue=1)
        for i in range(4)
    ),
    links=(("z00", "z01"), ("z01", "z02"), ("z02", "z03"), ("z03", "z00")),
    seed=0,
)


class TestByteIdentity:
    @given(
        topology=topologies(couple="pairs", min_zones=2),
        chaos=st.sampled_from(sorted(FLEET_CHAOS)),
    )
    @settings(max_examples=6, deadline=None)
    def test_health_byte_identical_across_shard_counts(
        self, topology, chaos
    ):
        spec = small_spec(topology=topology, chaos=chaos)
        from repro.sweep import canonical_json

        reference = canonical_json(reference_health(spec)) + "\n"
        reference_meter = reference_health(spec)["meter"]
        for n_shards in (1, 2, 4):
            result = run_sharded(spec, n_shards=n_shards)
            assert result.exact
            assert result.health_json() == reference, (
                f"shards={n_shards} health diverged ({chaos})"
            )
            # The group-summed meter snapshot rides the health document
            # and must be byte-stable across shard layouts too.
            assert result.health["meter"] == reference_meter, (
                f"shards={n_shards} meter snapshot diverged ({chaos})"
            )
            # Batched-dispatch accounting is work-determined too: the
            # same groups batch the same drains under any shard layout.
            assert (
                result.health["meter"]["batched_events"]
                == reference_meter["batched_events"]
            )

    def test_health_byte_identical_across_worker_counts(self):
        spec = small_spec(topology=RING, chaos="uplink-outage")
        serial = run_sharded(spec, n_shards=2, workers=1)
        pooled = run_sharded(spec, n_shards=2, workers=2)
        assert serial.health_json() == pooled.health_json()
        assert serial.alert_log == pooled.alert_log
        assert serial.health["meter"] == pooled.health["meter"]


class TestHealthDocument:
    def test_fault_free_fleet_is_quiet(self):
        result = run_sharded(small_spec(topology=RING), n_shards=2)
        health = result.health
        assert health is not None
        assert health["fleet"]["status"] == "ok"
        assert health["fleet"]["alerts_fired"] == 0
        assert health["log"] == []
        assert result.alert_log == ""
        assert all(
            zone["status"] == "ok" for zone in health["zones"].values()
        )

    def test_uplink_outage_fires_and_clears(self):
        spec = small_spec(topology=RING, chaos="uplink-outage")
        result = run_sharded(spec, n_shards=1)
        health = result.health
        assert health["fleet"]["alerts_fired"] >= 1
        log = result.alert_log
        assert "FIRING slo=uplink-stall" in log
        assert "CLEARED slo=uplink-stall" in log
        # The outage window closes well before the run ends, so nothing
        # should still be active at the end of the replay.
        assert health["fleet"]["alerts_active"] == 0

    def test_zone_rollups_are_consistent(self):
        result = run_sharded(small_spec(topology=RING), n_shards=2)
        health = result.health
        zones = health["zones"]
        assert set(zones) == {z.name for z in RING.zones}
        counters = health["counters"]
        assert sum(z["jobs"] for z in zones.values()) == (
            counters["jobs_submitted"]
        )
        assert sum(z["completed"] for z in zones.values()) == (
            counters["jobs_completed"]
        )
        assert sum(z["ues"] for z in zones.values()) == RING.total_ues

    def test_unmonitored_run_has_no_health(self):
        result = run_sharded(
            small_spec(topology=RING, monitor=False), n_shards=1
        )
        assert result.health is None
        assert result.alert_log == ""
        with pytest.raises(ValueError):
            result.health_json()

    def test_reference_health_requires_monitor(self):
        with pytest.raises(ValueError):
            reference_health(small_spec(topology=RING, monitor=False))

    def test_unknown_chaos_rejected(self):
        with pytest.raises(ValueError):
            small_spec(topology=RING, chaos="meteor-strike")

    def test_spec_round_trips_monitor_and_chaos(self):
        spec = small_spec(topology=RING, chaos="uplink-degraded")
        clone = ShardedFleetSpec.from_dict(spec.to_dict())
        assert clone.monitor is True
        assert clone.chaos == "uplink-degraded"


class TestPrometheusExport:
    def test_health_document_exports(self):
        result = run_sharded(
            small_spec(topology=RING, chaos="uplink-outage"), n_shards=1
        )
        text = fleet_health_to_prometheus(result.health)
        assert 'fleet_zone_status{zone="z00"}' in text
        assert "fleet_alerts_total" in text
        assert "fleet_status 0.0" in text

    def test_hostile_labels_are_escaped(self):
        result = run_sharded(small_spec(topology=RING), n_shards=1)
        health = json.loads(result.health_json())
        hostile = 'z"evil\n\\'
        health["zones"][hostile] = health["zones"].pop("z00")
        text = fleet_health_to_prometheus(health)
        assert '\\"evil\\n\\\\' in text
        for line in text.splitlines():
            assert not line.endswith("evil")  # no raw break-out

    def test_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            fleet_health_to_prometheus({"schema": "bogus/1"})


class TestDiffAndReport:
    @pytest.fixture()
    def docs(self, tmp_path):
        quiet = run_sharded(small_spec(topology=RING), n_shards=1)
        noisy = run_sharded(
            small_spec(topology=RING, chaos="uplink-outage"), n_shards=1
        )
        paths = {}
        for name, payload in (
            ("quiet_health", quiet.health_json()),
            ("noisy_health", noisy.health_json()),
            ("fleet", quiet.merged_json()),
        ):
            path = tmp_path / f"{name}.json"
            path.write_text(payload)
            paths[name] = str(path)
        return paths

    def test_load_profile_detects_fleet_kinds(self, docs):
        from repro.monitor.diff import load_profile

        assert load_profile(docs["fleet"]).kind == "fleet"
        profile = load_profile(docs["quiet_health"])
        assert profile.kind == "fleet-health"
        assert profile.metrics["zones_ok"] == 4.0
        assert profile.metrics["log_lines"] == 0.0

    def test_diff_flags_new_alerts(self, docs):
        from repro.monitor.diff import diff_files

        result = diff_files(docs["quiet_health"], docs["noisy_health"])
        regressed = {row.metric for row in result.regressions}
        assert "alerts_fired" in regressed
        assert "log_lines" in regressed

    def test_cli_diff_mixed_kinds_fails_cleanly(self, docs, capsys):
        assert main(["diff", docs["fleet"], docs["quiet_health"]]) == 2
        assert "cannot diff" in capsys.readouterr().err

    def test_cli_report_renders_health(self, docs, capsys):
        assert main(["report", docs["noisy_health"]]) == 0
        out = capsys.readouterr().out
        assert "Fleet health report" in out
        assert "Zone health" in out
        assert "FIRING slo=uplink-stall" in out

    def test_cli_report_health_prometheus(self, docs, capsys):
        assert main(["report", docs["quiet_health"], "--prometheus"]) == 0
        assert "fleet_zone_status" in capsys.readouterr().out

    def test_cli_report_hints_on_plain_fleet_doc(self, docs, capsys):
        assert main(["report", docs["fleet"]]) == 2
        assert "--health-out" in capsys.readouterr().err


class TestCli:
    def test_health_out_byte_identical_across_shards(self, tmp_path, capsys):
        paths = []
        for n_shards in (1, 2):
            path = tmp_path / f"health{n_shards}.json"
            code = main([
                "fleet", "--zones", "2", "--ues-per-zone", "1",
                "--jobs-per-ue", "1", "--couple", "pairs",
                "--window", "600", "--slack", "1200",
                "--chaos", "uplink-outage",
                "--shards", str(n_shards),
                "--health-out", str(path),
            ])
            assert code == 0
            paths.append(path)
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        payload = json.loads(paths[0].read_text())
        assert payload["schema"] == "repro.monitor.fleet/1"

    def test_monitor_flag_reports_fleet_status(self, capsys):
        code = main([
            "fleet", "--zones", "2", "--ues-per-zone", "1",
            "--jobs-per-ue", "1", "--window", "600", "--slack", "1200",
            "--monitor",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "fleet status" in out
        assert "alerts fired" in out

    def test_progress_heartbeats_on_stderr(self, capsys):
        code = main([
            "fleet", "--zones", "2", "--ues-per-zone", "1",
            "--jobs-per-ue", "1", "--window", "600", "--slack", "1200",
            "--shards", "2", "--progress",
        ])
        assert code == 0
        err = capsys.readouterr().err
        assert "[fleet 1/2]" in err
        assert "[fleet 2/2]" in err
