"""Tests for adaptation to time-varying conditions."""

import pytest

from repro import Job, ObjectiveWeights, OffloadController, photo_backup_app
from repro.core.controller import Environment
from repro.sim.rng import RngStream
from repro.traces import MarkovBandwidth, StepBandwidth


class TestCustomEnvironment:
    def test_numeric_bandwidth(self):
        env = Environment.build_custom(seed=0, uplink_bandwidth=2e6)
        assert env.uplink.bottleneck_rate() == 2e6
        assert env.downlink.bottleneck_rate() == 8e6

    def test_trace_bandwidth(self):
        trace = StepBandwidth([(0.0, 1e6), (100.0, 1e5)])
        env = Environment.build_custom(seed=0, uplink_bandwidth=trace)
        assert env.uplink.bottleneck_rate(50.0) == 1e6
        assert env.uplink.bottleneck_rate(150.0) == 1e5

    def test_latency_configurable(self):
        env = Environment.build_custom(
            seed=0, access_latency_s=0.1, wan_latency_s=0.2
        )
        assert env.uplink.total_latency_s == pytest.approx(0.3)

    def test_storage_option(self):
        env = Environment.build_custom(seed=0, with_storage=True)
        assert env.storage is not None


class TestAdaptiveReplanning:
    def test_context_tracks_bandwidth_steps(self):
        """The planning context reads the instantaneous uplink rate, so
        plans differ before and after a bandwidth collapse."""
        trace = StepBandwidth([(0.0, 1.25e7), (1_000.0, 2.0e4)])
        env = Environment.build_custom(seed=1, uplink_bandwidth=trace)
        controller = OffloadController(
            env, photo_backup_app(), weights=ObjectiveWeights.interactive()
        )
        controller.profile_offline()

        fast_partition = controller.plan(input_mb=4.0)
        env.sim.run(until=2_000.0)  # step into the degraded regime
        slow_partition = controller.plan(input_mb=4.0)
        assert len(slow_partition.cloud) < len(fast_partition.cloud)

    def test_adaptive_controller_replans_on_markov_channel(self):
        """On a good/bad channel the adaptive controller keeps completing
        jobs and re-evaluates its plan periodically."""
        trace = MarkovBandwidth(
            good_rate=1.25e7,
            bad_rate=5e4,
            mean_good=600.0,
            mean_bad=600.0,
            rng=RngStream(5),
        )
        env = Environment.build_custom(seed=2, uplink_bandwidth=trace)
        controller = OffloadController(
            env,
            photo_backup_app(),
            adaptive=True,
            replan_every=2,
            weights=ObjectiveWeights.interactive(),
        )
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        jobs = [
            Job(controller.app, input_mb=3.0, released_at=300.0 * i,
                deadline=300.0 * i + 7200.0)
            for i in range(10)
        ]
        report = controller.run_workload(jobs)
        assert report.jobs_completed == 10

    def test_online_learning_corrects_bad_priors(self):
        """A demand model seeded with garbage converges through the
        online observations production jobs feed back."""
        env = Environment.build(seed=3)
        controller = OffloadController(env, photo_backup_app())
        # No offline profiling: the model starts from priors only.
        before = controller.demand.mean_relative_error(3.0)
        jobs = [
            Job(controller.app, input_mb=3.0, released_at=30.0 * i)
            for i in range(10)
        ]
        controller.run_workload(jobs)
        after = controller.demand.mean_relative_error(3.0)
        assert after < before
