"""Tests for the profiling substrate."""

import pytest

from repro.apps import photo_backup_app
from repro.apps.graph import Component
from repro.profiling import DemandObservation, OnlineProfiler, Profiler
from repro.sim.rng import RngStream


class TestDemandObservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            DemandObservation("c", input_mb=-1.0, measured_gcycles=1.0)
        with pytest.raises(ValueError):
            DemandObservation("c", input_mb=1.0, measured_gcycles=-1.0)


class TestProfiler:
    def test_noiseless_measurement_is_exact(self):
        profiler = Profiler(RngStream(0), noise_sigma=0.0)
        component = Component("x", work_gcycles=2.0, work_gcycles_per_mb=3.0)
        observation = profiler.measure(component, input_mb=4.0)
        assert observation.measured_gcycles == pytest.approx(14.0)

    def test_noise_perturbs_but_bounded(self):
        profiler = Profiler(RngStream(1), noise_sigma=0.2)
        component = Component("x", work_gcycles=10.0)
        draws = [profiler.measure(component, 1.0).measured_gcycles for _ in range(50)]
        assert len(set(draws)) > 1
        for draw in draws:
            assert 2.0 <= draw <= 50.0  # clipped to [0.2x, 5x]

    def test_profile_covers_all_components(self):
        app = photo_backup_app()
        profiler = Profiler(RngStream(2))
        observations = profiler.profile(app, [1.0, 2.0], repetitions=3)
        assert set(observations) == set(app.component_names)
        for rows in observations.values():
            assert len(rows) == 6

    def test_profile_validation(self):
        profiler = Profiler(RngStream(0))
        app = photo_backup_app()
        with pytest.raises(ValueError):
            profiler.profile(app, [], repetitions=1)
        with pytest.raises(ValueError):
            profiler.profile(app, [1.0], repetitions=0)

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            Profiler(RngStream(0), noise_sigma=-0.1)

    def test_deterministic_given_stream(self):
        app = photo_backup_app()
        a = Profiler(RngStream(5)).profile(app, [1.0], repetitions=2)
        b = Profiler(RngStream(5)).profile(app, [1.0], repetitions=2)
        for name in a:
            assert [o.measured_gcycles for o in a[name]] == [
                o.measured_gcycles for o in b[name]
            ]


class TestOnlineProfiler:
    def test_records_flow_to_sink(self):
        received = []
        profiler = OnlineProfiler(received.append, rng=None, noise_sigma=0.0)
        component = Component("x", work_gcycles=5.0)
        profiler.record(component, input_mb=1.0, at_time=42.0)
        assert len(received) == 1
        assert received[0].component == "x"
        assert received[0].measured_gcycles == pytest.approx(5.0)
        assert received[0].at_time == 42.0
        assert profiler.observation_count == 1

    def test_noise_applied_when_rng_given(self):
        received = []
        profiler = OnlineProfiler(
            received.append, rng=RngStream(3), noise_sigma=0.3
        )
        component = Component("x", work_gcycles=5.0)
        for _ in range(10):
            profiler.record(component, 1.0, 0.0)
        values = {o.measured_gcycles for o in received}
        assert len(values) > 1

    def test_negative_sigma_rejected(self):
        with pytest.raises(ValueError):
            OnlineProfiler(lambda o: None, noise_sigma=-1.0)
