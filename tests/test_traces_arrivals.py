"""Tests for arrival-process generators."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngStream
from repro.traces import (
    BurstyArrivals,
    DeterministicArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)


class TestDeterministicArrivals:
    def test_explicit_times(self):
        process = DeterministicArrivals(times=[1.0, 3.0, 9.0])
        assert list(process.times(horizon=10.0)) == [1.0, 3.0, 9.0]

    def test_horizon_cuts_off(self):
        process = DeterministicArrivals(times=[1.0, 3.0, 9.0])
        assert list(process.times(horizon=5.0)) == [1.0, 3.0]

    def test_exhausted_returns_inf(self):
        process = DeterministicArrivals(times=[1.0])
        assert process.next_after(2.0) == math.inf

    def test_periodic(self):
        process = DeterministicArrivals(period=2.0)
        assert list(process.times(horizon=7.0)) == [2.0, 4.0, 6.0]

    def test_periodic_with_offset(self):
        process = DeterministicArrivals(period=2.0, offset=0.5)
        assert process.next_after(0.0) == pytest.approx(0.5)
        assert process.next_after(0.5) == pytest.approx(2.5)

    def test_requires_exactly_one_mode(self):
        with pytest.raises(ValueError):
            DeterministicArrivals()
        with pytest.raises(ValueError):
            DeterministicArrivals(times=[1.0], period=2.0)

    def test_period_positive(self):
        with pytest.raises(ValueError):
            DeterministicArrivals(period=0.0)


class TestPoissonArrivals:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0, RngStream(0))

    def test_strictly_increasing(self):
        process = PoissonArrivals(2.0, RngStream(1))
        times = list(process.times(horizon=50.0))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_empirical_rate_close(self):
        process = PoissonArrivals(5.0, RngStream(2))
        times = list(process.times(horizon=2000.0))
        empirical = len(times) / 2000.0
        assert empirical == pytest.approx(5.0, rel=0.1)

    def test_reproducible(self):
        a = list(PoissonArrivals(1.0, RngStream(3)).times(horizon=20.0))
        b = list(PoissonArrivals(1.0, RngStream(3)).times(horizon=20.0))
        assert a == b


class TestDiurnalArrivals:
    def test_validation(self):
        rng = RngStream(0)
        with pytest.raises(ValueError):
            DiurnalArrivals(0.0, 0.5, rng)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, 1.0, rng)
        with pytest.raises(ValueError):
            DiurnalArrivals(1.0, 0.5, rng, period=0.0)

    def test_rate_modulates(self):
        process = DiurnalArrivals(10.0, 0.8, RngStream(1), period=100.0)
        peak = process.rate_at(25.0)  # sin peaks at quarter period
        trough = process.rate_at(75.0)
        assert peak == pytest.approx(18.0)
        assert trough == pytest.approx(2.0)

    def test_mean_rate_preserved(self):
        process = DiurnalArrivals(4.0, 0.6, RngStream(2), period=100.0)
        times = list(process.times(horizon=5000.0))
        assert len(times) / 5000.0 == pytest.approx(4.0, rel=0.15)

    def test_peak_denser_than_trough(self):
        process = DiurnalArrivals(4.0, 0.9, RngStream(3), period=1000.0)
        times = list(process.times(horizon=20_000.0))
        peak_hits = sum(1 for t in times if (t % 1000.0) < 500.0)
        trough_hits = len(times) - peak_hits
        assert peak_hits > 1.5 * trough_hits


class TestBurstyArrivals:
    def test_validation(self):
        rng = RngStream(0)
        with pytest.raises(ValueError):
            BurstyArrivals(0.0, 1.0, 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            BurstyArrivals(1.0, 1.0, 0.0, 1.0, rng)

    def test_strictly_increasing(self):
        process = BurstyArrivals(0.5, 20.0, 50.0, 5.0, RngStream(4))
        times = list(process.times(horizon=500.0))
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_rate_between_regimes(self):
        calm_rate, burst_rate = 1.0, 30.0
        process = BurstyArrivals(calm_rate, burst_rate, 50.0, 10.0, RngStream(5))
        times = list(process.times(horizon=20_000.0))
        empirical = len(times) / 20_000.0
        assert calm_rate < empirical < burst_rate

    def test_burstiness_visible(self):
        """Interarrival CV of an MMPP exceeds the Poisson CV of 1."""
        process = BurstyArrivals(0.2, 50.0, 100.0, 5.0, RngStream(6))
        times = list(process.times(horizon=20_000.0))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        variance = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        cv = math.sqrt(variance) / mean
        assert cv > 1.3


@given(
    rate=st.floats(min_value=0.1, max_value=20.0),
    horizon=st.floats(min_value=1.0, max_value=200.0),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=30, deadline=None)
def test_all_arrivals_within_horizon(rate, horizon, seed):
    process = PoissonArrivals(rate, RngStream(seed))
    for t in process.times(horizon=horizon):
        assert 0.0 < t <= horizon
