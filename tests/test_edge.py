"""Tests for the edge-node baseline substrate."""

import pytest

from repro.edge import EdgeNode, EdgeNodeSpec
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestEdgeNodeSpec:
    def test_execution_time(self):
        spec = EdgeNodeSpec(cycles_per_second=3.0e9)
        assert spec.execution_time(6.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            EdgeNodeSpec(cycles_per_second=0.0)
        with pytest.raises(ValueError):
            EdgeNodeSpec(cores=0)
        with pytest.raises(ValueError):
            EdgeNodeSpec(hourly_cost_usd=-0.1)
        with pytest.raises(ValueError):
            EdgeNodeSpec().execution_time(-1.0)


class TestExecution:
    def test_single_job(self, sim):
        node = EdgeNode(sim, EdgeNodeSpec(cycles_per_second=3.0e9, cores=1))
        record = sim.run(until=node.execute(6.0))
        assert record.latency == pytest.approx(2.0)
        assert record.queue_delay == 0.0

    def test_queueing_beyond_cores(self, sim):
        node = EdgeNode(sim, EdgeNodeSpec(cycles_per_second=3.0e9, cores=1))
        events = [node.execute(3.0) for _ in range(2)]

        def join(sim):
            got = yield sim.all_of(events)
            return sorted(r.finished_at for r in got.values())

        finishes = sim.run(until=sim.spawn(join(sim)))
        assert finishes == pytest.approx([1.0, 2.0])

    def test_estimate_matches(self, sim):
        node = EdgeNode(sim)
        estimate = node.estimate_execution_time(9.0)
        record = sim.run(until=node.execute(9.0))
        assert record.latency == pytest.approx(estimate)

    def test_executions_recorded(self, sim):
        node = EdgeNode(sim)
        sim.run(until=node.execute(3.0))
        assert len(node.executions) == 1


class TestAccounting:
    def test_provisioned_cost_accrues_with_wall_time(self, sim):
        node = EdgeNode(sim, EdgeNodeSpec(hourly_cost_usd=0.36))
        sim.timeout(7200.0)
        sim.run()
        assert node.provisioned_cost() == pytest.approx(0.72)

    def test_cost_independent_of_usage(self, sim):
        """The structural difference from serverless: idle time still bills."""
        busy = EdgeNode(sim, EdgeNodeSpec(hourly_cost_usd=0.36))
        sim.run(until=busy.execute(30.0))
        sim.timeout(3600.0 - sim.now)
        sim.run()
        idle_cost = EdgeNodeSpec(hourly_cost_usd=0.36).hourly_cost_usd
        assert busy.provisioned_cost() == pytest.approx(idle_cost)

    def test_cost_end_before_start_rejected(self, sim):
        sim.timeout(10.0)
        sim.run()
        node = EdgeNode(sim)
        with pytest.raises(ValueError):
            node.provisioned_cost(until=5.0)

    def test_utilisation(self, sim):
        node = EdgeNode(sim, EdgeNodeSpec(cycles_per_second=3.0e9, cores=2))
        sim.run(until=node.execute(30.0))  # 10 busy core-seconds
        assert sim.now == pytest.approx(10.0)
        # 10 busy core-seconds over 10 s * 2 cores = 50%.
        assert node.utilisation() == pytest.approx(0.5)

    def test_utilisation_zero_at_start(self, sim):
        assert EdgeNode(sim).utilisation() == 0.0
