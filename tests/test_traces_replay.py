"""Tests for workload trace import/export."""

import json
import math

import pytest

from repro import Environment, Job, OffloadController, photo_backup_app
from repro.apps import nightly_analytics_app
from repro.apps.catalog import CATALOG
from repro.traces.replay import (
    TRACE_VERSION,
    job_to_record,
    load_report_summary,
    load_workload,
    record_to_job,
    save_report,
    save_workload,
)


def resolver(name):
    return CATALOG[name]()


class TestJobRecords:
    def test_roundtrip(self):
        app = photo_backup_app()
        job = Job(app, input_mb=3.5, released_at=10.0, deadline=100.0)
        rebuilt = record_to_job(job_to_record(job), {"photo_backup": app})
        assert rebuilt.app.name == "photo_backup"
        assert rebuilt.input_mb == 3.5
        assert rebuilt.released_at == 10.0
        assert rebuilt.deadline == 100.0

    def test_infinite_deadline_serialised_as_string(self):
        job = Job(photo_backup_app(), input_mb=1.0)
        record = job_to_record(job)
        assert record["deadline"] == "inf"
        rebuilt = record_to_job(record, resolver)
        assert math.isinf(rebuilt.deadline)

    def test_missing_fields_defaulted(self):
        job = record_to_job({"app": "photo_backup"}, resolver)
        assert job.input_mb == 1.0
        assert job.released_at == 0.0
        assert math.isinf(job.deadline)

    def test_unknown_app_rejected_by_mapping(self):
        with pytest.raises(KeyError):
            record_to_job({"app": "ghost"}, {"photo_backup": photo_backup_app()})


class TestWorkloadFiles:
    def test_save_load_roundtrip(self, tmp_path):
        app = photo_backup_app()
        jobs = [
            Job(app, input_mb=2.0, released_at=50.0, deadline=500.0),
            Job(app, input_mb=4.0, released_at=10.0, deadline=300.0),
        ]
        path = tmp_path / "trace.json"
        save_workload(path, jobs)
        loaded = load_workload(path, resolver)
        assert len(loaded) == 2
        # Sorted by release time on load.
        assert [job.released_at for job in loaded] == [10.0, 50.0]

    def test_version_checked(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 99, "jobs": []}))
        with pytest.raises(ValueError, match="version"):
            load_workload(path, resolver)

    def test_mixed_apps(self, tmp_path):
        jobs = [
            Job(photo_backup_app(), input_mb=1.0, released_at=0.0),
            Job(nightly_analytics_app(), input_mb=2.0, released_at=5.0),
        ]
        path = tmp_path / "mixed.json"
        save_workload(path, jobs)
        loaded = load_workload(path, resolver)
        assert {job.app.name for job in loaded} == {
            "photo_backup", "nightly_analytics"
        }

    def test_loaded_trace_is_runnable(self, tmp_path):
        app = photo_backup_app()
        jobs = [
            Job(app, input_mb=2.0, released_at=30.0 * i, deadline=30.0 * i + 3600)
            for i in range(3)
        ]
        path = tmp_path / "run.json"
        save_workload(path, jobs)

        env = Environment.build(seed=1)
        controller = OffloadController(env, photo_backup_app())
        controller.profile_offline()
        controller.plan(input_mb=2.0)
        loaded = load_workload(path, lambda name: controller.app)
        report = controller.run_workload(loaded)
        assert report.jobs_completed == 3


class TestReportFiles:
    def make_report(self):
        env = Environment.build(seed=2)
        controller = OffloadController(env, photo_backup_app())
        controller.profile_offline()
        controller.plan(input_mb=2.0)
        jobs = [Job(controller.app, input_mb=2.0, deadline=3600.0)]
        return controller.run_workload(jobs)

    def test_save_and_read_summary(self, tmp_path):
        report = self.make_report()
        path = tmp_path / "report.json"
        save_report(path, report)
        summary = load_report_summary(path)
        assert summary["jobs_completed"] == 1
        assert summary["deadline_miss_rate"] == 0.0
        assert summary["total_ue_energy_j"] == pytest.approx(
            report.total_ue_energy_j
        )

    def test_per_job_records_present(self, tmp_path):
        report = self.make_report()
        path = tmp_path / "report.json"
        save_report(path, report)
        payload = json.loads(path.read_text())
        assert len(payload["results"]) == 1
        record = payload["results"][0]
        assert record["met_deadline"] is True
        assert record["response_s"] > 0
        assert payload["failures"] == []

    def test_bad_version_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"version": 0, "summary": {}}))
        with pytest.raises(ValueError):
            load_report_summary(path)
