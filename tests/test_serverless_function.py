"""Tests for the function-spec and compute-duration model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    execution_time,
    vcpus_for_memory,
)
from repro.serverless.function import (
    FULL_VCPU_MB,
    MAX_VCPUS,
    STANDARD_MEMORY_TIERS_MB,
    amdahl_speedup,
)


class TestVcpusForMemory:
    def test_one_vcpu_at_full(self):
        assert vcpus_for_memory(FULL_VCPU_MB) == pytest.approx(1.0)

    def test_fractional_below(self):
        assert vcpus_for_memory(FULL_VCPU_MB / 2) == pytest.approx(0.5)

    def test_capped_at_max(self):
        assert vcpus_for_memory(1e9) == MAX_VCPUS

    def test_validation(self):
        with pytest.raises(ValueError):
            vcpus_for_memory(0.0)


class TestAmdahlSpeedup:
    def test_serial_never_above_one_core(self):
        assert amdahl_speedup(4.0, 0.0) == pytest.approx(1.0)

    def test_perfectly_parallel_is_linear(self):
        assert amdahl_speedup(4.0, 1.0) == pytest.approx(4.0)

    def test_sub_one_core_slows_everything(self):
        assert amdahl_speedup(0.25, 0.9) == pytest.approx(0.25)

    def test_classic_amdahl_value(self):
        # p=0.5 at 2 cores: 1/(0.5 + 0.25) = 4/3.
        assert amdahl_speedup(2.0, 0.5) == pytest.approx(4.0 / 3.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0.0, 0.5)
        with pytest.raises(ValueError):
            amdahl_speedup(1.0, 1.5)

    @given(
        cores=st.floats(min_value=0.05, max_value=6.0),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_speedup_bounded_by_cores(self, cores, p):
        speedup = amdahl_speedup(cores, p)
        assert 0 < speedup <= max(cores, 1.0) + 1e-9


class TestExecutionTime:
    def test_reference_speed(self):
        # 2.4 gigacycles at one 2.4 GHz vCPU = 1 second.
        assert execution_time(2.4, FULL_VCPU_MB) == pytest.approx(1.0)

    def test_half_memory_doubles_time(self):
        full = execution_time(2.4, FULL_VCPU_MB)
        half = execution_time(2.4, FULL_VCPU_MB / 2)
        assert half == pytest.approx(2 * full)

    def test_serial_flattens_above_one_vcpu(self):
        at_one = execution_time(10.0, FULL_VCPU_MB, parallel_fraction=0.0)
        at_six = execution_time(10.0, 10240, parallel_fraction=0.0)
        assert at_six == pytest.approx(at_one)

    def test_parallel_keeps_scaling(self):
        at_one = execution_time(10.0, FULL_VCPU_MB, parallel_fraction=0.9)
        at_big = execution_time(10.0, 10240, parallel_fraction=0.9)
        assert at_big < 0.5 * at_one

    def test_zero_work_is_instant(self):
        assert execution_time(0.0, 1024) == 0.0

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            execution_time(-1.0, 1024)

    @given(
        work=st.floats(min_value=0.01, max_value=100.0),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_duration_monotone_nonincreasing_in_memory(self, work, p):
        durations = [
            execution_time(work, m, p) for m in STANDARD_MEMORY_TIERS_MB
        ]
        assert all(a >= b - 1e-9 for a, b in zip(durations, durations[1:]))


class TestFunctionSpec:
    def test_defaults_valid(self):
        spec = FunctionSpec("f")
        assert spec.memory_mb == 1024.0

    def test_with_memory_copies(self):
        spec = FunctionSpec("f", memory_mb=512, package_mb=10)
        bigger = spec.with_memory(2048)
        assert bigger.memory_mb == 2048
        assert bigger.package_mb == 10
        assert spec.memory_mb == 512

    def test_duration_for_uses_configuration(self):
        spec = FunctionSpec("f", memory_mb=FULL_VCPU_MB)
        assert spec.duration_for(2.4) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FunctionSpec("f", memory_mb=0)
        with pytest.raises(ValueError):
            FunctionSpec("f", package_mb=-1)
        with pytest.raises(ValueError):
            FunctionSpec("f", parallel_fraction=2.0)
        with pytest.raises(ValueError):
            FunctionSpec("f", concurrency_limit=0)


class TestInvocationRequest:
    def test_validation(self):
        with pytest.raises(ValueError):
            InvocationRequest("f", work_gcycles=-1.0)
        with pytest.raises(ValueError):
            InvocationRequest("f", work_gcycles=1.0, payload_bytes=-1.0)
