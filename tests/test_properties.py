"""Cross-module property-based tests (hypothesis).

These encode the invariants the whole reproduction leans on; a violation
anywhere in the stack (kernel, models, planners) surfaces here.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import Job, photo_backup_app, random_tree_app
from repro.core.partitioning import (
    ExhaustivePartitioner,
    MinCutPartitioner,
    ObjectiveWeights,
    Partition,
    PartitionContext,
    evaluate_partition,
)
from repro.core.scheduler import (
    CostWindowScheduler,
    DeadlineBatcher,
    EagerScheduler,
)
from repro.network.link import Link, NetworkPath
from repro.sim import Resource, Simulator
from repro.sim.rng import RngStream
from repro.traces import StepBandwidth


class TestKernelProperties:
    @given(delays=st.lists(st.floats(min_value=0.0, max_value=1e4),
                           min_size=1, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []

        def watcher(sim, delay):
            yield sim.timeout(delay)
            fired.append(sim.now)

        for delay in delays:
            sim.spawn(watcher(sim, delay))
        sim.run()
        assert len(fired) == len(delays)
        assert fired == sorted(fired)
        assert fired == sorted(delays)

    @given(
        capacity=st.integers(min_value=1, max_value=5),
        durations=st.lists(st.floats(min_value=0.1, max_value=10.0),
                           min_size=1, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_resource_never_oversubscribed(self, capacity, durations):
        sim = Simulator()
        resource = Resource(sim, capacity=capacity)
        concurrency = {"now": 0, "peak": 0}

        def worker(sim, duration):
            request = resource.request()
            yield request
            concurrency["now"] += 1
            concurrency["peak"] = max(concurrency["peak"], concurrency["now"])
            yield sim.timeout(duration)
            concurrency["now"] -= 1
            resource.release(request)

        for duration in durations:
            sim.spawn(worker(sim, duration))
        sim.run()
        assert concurrency["peak"] <= capacity
        assert concurrency["now"] == 0
        # Total busy time conservation: makespan >= total work / capacity.
        assert sim.now >= sum(durations) / capacity - 1e-9


class TestNetworkProperties:
    @given(
        nbytes=st.floats(min_value=0.0, max_value=1e7),
        rate1=st.floats(min_value=1e3, max_value=1e7),
        rate2=st.floats(min_value=1e3, max_value=1e7),
        switch=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_uncontended_transfer_matches_estimate(
        self, nbytes, rate1, rate2, switch
    ):
        sim = Simulator()
        trace = StepBandwidth([(0.0, rate1), (switch, rate2)])
        link = Link(sim, bandwidth=trace, latency_s=0.01)
        estimate = link.estimate_transfer_time(nbytes)
        result = sim.run(until=link.transfer(nbytes))
        assert result.duration == pytest.approx(estimate, rel=1e-9, abs=1e-9)

    @given(
        nbytes=st.floats(min_value=1.0, max_value=1e6),
        rates=st.lists(st.floats(min_value=1e3, max_value=1e7),
                       min_size=1, max_size=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_path_time_at_least_bottleneck_time(self, nbytes, rates):
        sim = Simulator()
        links = [Link(sim, bandwidth=rate) for rate in rates]
        path = NetworkPath(sim, links)
        result = sim.run(until=path.transfer(nbytes))
        assert result.duration >= nbytes / min(rates) - 1e-9


def tree_context(n, seed, uplink, weights=None):
    app = random_tree_app(n, RngStream(seed))
    work = {c.name: c.work_for(2.0) for c in app.components}
    return app, PartitionContext(
        app=app, input_mb=2.0, work=work, uplink_bps=uplink,
        weights=weights or ObjectiveWeights(),
    )


class TestPartitioningProperties:
    @given(
        n=st.integers(min_value=2, max_value=10),
        seed=st.integers(min_value=0, max_value=500),
        uplink=st.floats(min_value=1e4, max_value=1e8),
    )
    @settings(max_examples=40, deadline=None)
    def test_mincut_is_single_flip_stable(self, n, seed, uplink):
        """No single component move improves the min-cut partition —
        the first-order optimality condition of an exact optimum."""
        app, ctx = tree_context(n, seed, uplink)
        partition = MinCutPartitioner().partition(ctx)
        best = evaluate_partition(ctx, partition).objective
        for name in app.offloadable_names():
            flipped = evaluate_partition(ctx, partition.moved(name)).objective
            assert flipped >= best - max(1e-9 * abs(best), 1e-9)

    @given(
        n=st.integers(min_value=2, max_value=8),
        seed=st.integers(min_value=0, max_value=500),
        subset_seed=st.integers(min_value=0, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_makespan_never_exceeds_serialized(self, n, seed, subset_seed):
        app, ctx = tree_context(n, seed, 1.25e6)
        rng = RngStream(subset_seed)
        cloud = frozenset(
            name for name in app.offloadable_names() if rng.bernoulli(0.5)
        )
        evaluation = evaluate_partition(ctx, Partition(app.name, cloud))
        assert evaluation.makespan_s <= evaluation.serialized_latency_s + 1e-9
        assert evaluation.ue_energy_j >= 0
        assert evaluation.cloud_cost_usd >= 0

    @given(
        n=st.integers(min_value=2, max_value=7),
        seed=st.integers(min_value=0, max_value=300),
        scale=st.floats(min_value=1.5, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_optimal_objective_monotone_in_bandwidth(self, n, seed, scale):
        """More uplink bandwidth never makes the optimum worse."""
        base_uplink = 2e5
        _app, slow_ctx = tree_context(n, seed, base_uplink)
        _app, fast_ctx = tree_context(n, seed, base_uplink * scale)
        slow = ExhaustivePartitioner().evaluate(slow_ctx).objective
        fast = ExhaustivePartitioner().evaluate(fast_ctx).objective
        assert fast <= slow + 1e-9


class TestSchedulerProperties:
    @given(
        now=st.floats(min_value=0.0, max_value=1e5),
        slack=st.floats(min_value=0.0, max_value=1e5),
        estimate=st.floats(min_value=0.01, max_value=1e4),
        window=st.floats(min_value=1.0, max_value=1e4),
    )
    @settings(max_examples=80, deadline=None)
    def test_all_schedulers_dispatch_in_valid_interval(
        self, now, slack, estimate, window
    ):
        app = photo_backup_app()
        job = Job(app, released_at=now, deadline=now + slack)
        schedulers = [
            EagerScheduler(),
            DeadlineBatcher(window_s=window),
            CostWindowScheduler(lambda t: (t % 97.0), resolution_s=window),
        ]
        for scheduler in schedulers:
            decision = scheduler.decide(job, now, estimate)
            assert decision.dispatch_at >= now
            latest = scheduler.latest_safe_start(job, estimate)
            if latest >= now:
                assert decision.dispatch_at <= latest + 1e-6, scheduler.name


class TestStorageProperties:
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["put", "get", "get_ext", "delete"]),
                st.integers(min_value=0, max_value=4),  # key index
                st.floats(min_value=0.0, max_value=1e8),  # size for puts
            ),
            min_size=1,
            max_size=30,
        ),
    )
    @settings(max_examples=50, deadline=None)
    def test_object_store_invariants(self, ops):
        """For any op sequence: stored_bytes matches the live objects,
        cost is non-decreasing, and gb-seconds never shrink."""
        from repro.storage import ObjectNotFoundError, ObjectStore

        sim = Simulator()
        store = ObjectStore(sim, request_latency_s=0.001)
        live = {}
        last_cost = 0.0
        last_gbs = 0.0

        def advance():
            sim.timeout(1.0)
            sim.run()

        for op, key_index, size in ops:
            key = f"k{key_index}"
            try:
                if op == "put":
                    sim.run(until=store.put(key, size))
                    live[key] = size
                elif op == "delete":
                    store.delete(key)
                    live.pop(key, None)
                else:
                    sim.run(until=store.get(key, external=op == "get_ext"))
            except ObjectNotFoundError:
                assert key not in live
            advance()
            assert store.stored_bytes == pytest.approx(sum(live.values()))
            cost = store.total_cost()
            gbs = store.storage_gb_seconds()
            assert cost >= last_cost - 1e-12
            assert gbs >= last_gbs - 1e-12
            last_cost, last_gbs = cost, gbs


class TestFleetAggregation:
    @given(
        per_device=st.lists(
            st.integers(min_value=0, max_value=3), min_size=1, max_size=4
        ),
        seed=st.integers(min_value=0, max_value=20),
    )
    @settings(max_examples=10, deadline=None)
    def test_fleet_report_sums_match_devices(self, per_device, seed):
        from repro.apps import nightly_analytics_app
        from repro.fleet import FleetController, FleetEnvironment

        env = FleetEnvironment.build(n_devices=len(per_device), seed=seed)
        fleet = FleetController(env, nightly_analytics_app())
        fleet.profile_offline()
        fleet.plan(input_mb=2.0)
        jobs = {
            device: [
                Job(fleet.app, input_mb=2.0, released_at=30.0 * k,
                    deadline=30.0 * k + 7200.0)
                for k in range(count)
            ]
            for device, count in enumerate(per_device)
        }
        report = fleet.run(jobs)
        assert report.jobs_completed == sum(per_device)
        assert report.total_ue_energy_j == pytest.approx(
            sum(r.total_ue_energy_j for r in report.per_device.values())
        )
        assert report.total_cloud_cost_usd == pytest.approx(
            sum(r.total_cloud_cost_usd for r in report.per_device.values())
        )


class TestBillingProperties:
    @given(
        work=st.floats(min_value=0.01, max_value=500.0),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_serverless_speedup_never_exceeds_vcpu_grant(self, work, p):
        from repro.serverless.function import (
            FULL_VCPU_MB,
            execution_time,
            vcpus_for_memory,
        )

        base = execution_time(work, FULL_VCPU_MB, p)
        for memory in (2048, 4096, 10240):
            speedup = base / execution_time(work, memory, p)
            assert speedup <= vcpus_for_memory(memory) + 1e-9
