"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_requires_app(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["plan"])

    def test_unknown_connectivity_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["plan", "--app", "photo_backup", "--connectivity", "6g"]
            )

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--app", "photo_backup", "--scheduler", "psychic"]
            )


class TestListCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        for app in ("photo_backup", "nightly_analytics", "ml_training"):
            assert app in out

    def test_list_profiles(self, capsys):
        assert main(["list-profiles"]) == 0
        out = capsys.readouterr().out
        for profile in ("3g", "4g", "5g", "wifi", "broadband"):
            assert profile in out


class TestPlan:
    def test_plan_outputs_partition_and_allocation(self, capsys):
        code = main(
            ["plan", "--app", "photo_backup", "--seed", "1", "--input-mb", "4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cloud components" in out
        assert "Memory allocation" in out
        assert "capture" in out  # pinned, listed as local

    def test_unknown_app_exits(self):
        with pytest.raises(SystemExit, match="unknown app"):
            main(["plan", "--app", "nope"])

    def test_unknown_weights_exits(self):
        with pytest.raises(SystemExit, match="weights"):
            main(["plan", "--app", "photo_backup", "--weights", "vibes"])


class TestRun:
    def test_run_reports_metrics(self, capsys):
        code = main(
            [
                "run", "--app", "nightly_analytics", "--jobs", "2",
                "--seed", "2", "--slack", "3600",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "jobs completed" in out
        assert "deadline miss %" in out

    @pytest.mark.parametrize("scheduler", ["eager", "edf", "batcher", "costwindow"])
    def test_all_schedulers_run(self, scheduler, capsys):
        code = main(
            [
                "run", "--app", "photo_backup", "--jobs", "1",
                "--scheduler", scheduler, "--slack", "7200",
            ]
        )
        assert code == 0

    def test_with_storage_flag(self, capsys):
        code = main(
            [
                "run", "--app", "photo_backup", "--jobs", "1",
                "--with-storage", "--slack", "3600",
            ]
        )
        assert code == 0

    def test_deterministic_output(self, capsys):
        argv = ["run", "--app", "photo_backup", "--jobs", "2", "--seed", "7"]
        main(argv)
        first = capsys.readouterr().out
        main(argv)
        second = capsys.readouterr().out
        assert first == second


class TestTrace:
    def test_run_trace_then_report(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        code = main(
            [
                "run", "--app", "photo_backup", "--jobs", "2",
                "--seed", "3", "--trace", str(trace),
            ]
        )
        assert code == 0
        assert "trace written" in capsys.readouterr().out
        assert trace.exists()

        assert main(["report", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Per-job phase attribution" in out
        assert "dominant" in out
        assert "app=photo_backup" in out

    def test_trace_is_perfetto_loadable_json(self, tmp_path):
        import json

        trace = tmp_path / "run.trace.json"
        main(
            [
                "run", "--app", "photo_backup", "--jobs", "1",
                "--trace", str(trace),
            ]
        )
        doc = json.loads(trace.read_text())
        assert doc["displayTimeUnit"] == "ms"
        phases = {e["ph"] for e in doc["traceEvents"]}
        assert phases <= {"X", "i"}
        assert doc["metadata"]["app"] == "photo_backup"

    def test_report_prometheus_flag(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        main(
            [
                "run", "--app", "photo_backup", "--jobs", "1",
                "--trace", str(trace),
            ]
        )
        capsys.readouterr()
        assert main(["report", str(trace), "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert 'jobs_total{app="photo_backup"' in out

    def test_trace_flag_deterministic(self, tmp_path):
        traces = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            main(
                [
                    "run", "--app", "photo_backup", "--jobs", "2",
                    "--seed", "11", "--trace", str(path),
                ]
            )
            traces.append(path.read_bytes())
        assert traces[0] == traces[1]


class TestWorkloadReplay:
    def test_run_from_trace_and_save_report(self, tmp_path, capsys):
        from repro import Job, photo_backup_app
        from repro.traces import load_report_summary, save_workload

        trace = tmp_path / "trace.json"
        jobs = [
            Job(photo_backup_app(), input_mb=2.0, released_at=20.0 * i,
                deadline=20.0 * i + 3600.0)
            for i in range(3)
        ]
        save_workload(trace, jobs)
        report_path = tmp_path / "report.json"
        code = main(
            [
                "run", "--app", "photo_backup",
                "--workload", str(trace),
                "--save-report", str(report_path),
            ]
        )
        assert code == 0
        summary = load_report_summary(report_path)
        assert summary["jobs_completed"] == 3

    def test_trace_without_matching_app_exits(self, tmp_path):
        from repro import Job, photo_backup_app
        from repro.traces import save_workload

        trace = tmp_path / "trace.json"
        save_workload(trace, [Job(photo_backup_app(), input_mb=1.0)])
        with pytest.raises(SystemExit, match="no jobs"):
            main(["run", "--app", "ml_training", "--workload", str(trace)])


class TestSweep:
    def _argv(self, tmp_path, tag, workers):
        return [
            "sweep",
            "--scenario", "repro.sweep.scenarios:kernel_smoke",
            "--grid", '{"processes": [2, 4, 6], "interrupt_every": [2, 3]}',
            "--workers", str(workers),
            "--cache-dir", str(tmp_path / f"cache-{tag}"),
            "--out", str(tmp_path / f"merged-{tag}.json"),
            "--manifest", str(tmp_path / f"manifest-{tag}.json"),
        ]

    def test_sweep_writes_merged_output_and_manifest(self, tmp_path, capsys):
        import json

        assert main(self._argv(tmp_path, "a", 1)) == 0
        out = capsys.readouterr().out
        assert "Sweep summary" in out
        merged = json.loads((tmp_path / "merged-a.json").read_text())
        assert len(merged["runs"]) == 6
        manifest = json.loads((tmp_path / "manifest-a.json").read_text())
        assert manifest["total"] == 6
        assert manifest["executed"] == 6

    def test_sweep_output_byte_identical_across_workers(self, tmp_path):
        main(self._argv(tmp_path, "serial", 1))
        main(self._argv(tmp_path, "parallel", 2))
        serial = (tmp_path / "merged-serial.json").read_bytes()
        parallel = (tmp_path / "merged-parallel.json").read_bytes()
        assert serial == parallel

    def test_sweep_cached_rerun_is_byte_identical(self, tmp_path, capsys):
        import json

        argv = self._argv(tmp_path, "c", 1)
        main(argv)
        first = (tmp_path / "merged-c.json").read_bytes()
        main(argv)
        second = (tmp_path / "merged-c.json").read_bytes()
        assert first == second
        manifest = json.loads((tmp_path / "manifest-c.json").read_text())
        assert manifest["executed"] == 0
        assert manifest["cached"] == 6

    def test_sweep_from_spec_file(self, tmp_path, capsys):
        import json

        spec = tmp_path / "spec.json"
        spec.write_text(json.dumps({
            "scenario": "repro.sweep.scenarios:kernel_smoke",
            "grid": {"processes": [2, 3]},
            "seeds": 2,
        }))
        out = tmp_path / "merged.json"
        assert main(["sweep", "--spec", str(spec), "--workers", "1",
                     "--out", str(out)]) == 0
        merged = json.loads(out.read_text())
        assert len(merged["runs"]) == 4

    def test_sweep_rejects_bad_grid_json(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["sweep", "--grid", "{not json", "--workers", "1"])


class TestDiff:
    def _report(self, tmp_path, name, summary):
        import json

        path = tmp_path / name
        path.write_text(json.dumps({"version": 1, "summary": summary}))
        return str(path)

    def test_identical_reports_exit_zero(self, tmp_path, capsys):
        a = self._report(tmp_path, "a.json", {"mean_response_s": 10.0})
        b = self._report(tmp_path, "b.json", {"mean_response_s": 10.0})
        assert main(["diff", a, b]) == 0
        assert "OK: no regressions" in capsys.readouterr().out

    def test_regression_exits_one(self, tmp_path, capsys):
        a = self._report(tmp_path, "a.json", {"mean_response_s": 10.0})
        b = self._report(tmp_path, "b.json", {"mean_response_s": 12.0})
        assert main(["diff", a, b, "--threshold", "0.1"]) == 1
        out = capsys.readouterr().out
        assert "REGRESSION" in out
        assert "mean_response_s" in out

    def test_improvement_exits_zero(self, tmp_path, capsys):
        a = self._report(tmp_path, "a.json", {"mean_response_s": 10.0})
        b = self._report(tmp_path, "b.json", {"mean_response_s": 5.0})
        assert main(["diff", a, b]) == 0

    def test_out_flag_writes_canonical_json(self, tmp_path, capsys):
        import json

        a = self._report(tmp_path, "a.json", {"cost": 1.0})
        b = self._report(tmp_path, "b.json", {"cost": 2.0})
        out = tmp_path / "diff.json"
        main(["diff", a, b, "--out", str(out)])
        doc = json.loads(out.read_text())
        assert doc["version"] == 1
        assert doc["ok"] is False
        assert doc["rows"][0]["metric"] == "cost"

    def test_mixed_kinds_exit_two(self, tmp_path, capsys):
        trace = tmp_path / "run.trace.json"
        main(
            [
                "run", "--app", "photo_backup", "--jobs", "1",
                "--trace", str(trace),
            ]
        )
        report = self._report(tmp_path, "r.json", {"cost": 1.0})
        capsys.readouterr()
        assert main(["diff", str(trace), report]) == 2
        err = capsys.readouterr().err
        assert "cannot diff" in err

    def test_trace_diff_same_run_exits_zero(self, tmp_path, capsys):
        traces = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            main(
                [
                    "run", "--app", "photo_backup", "--jobs", "2",
                    "--seed", "11", "--trace", str(path),
                ]
            )
            traces.append(str(path))
        capsys.readouterr()
        assert main(["diff", *traces]) == 0


class TestArtifactErrors:
    """Missing/truncated/non-JSON inputs: one stderr line, exit 2."""

    def _assert_one_error_line(self, capsys):
        err = capsys.readouterr().err.strip()
        assert len(err.splitlines()) == 1
        assert err.startswith("error:")

    @pytest.mark.parametrize("command", ["report", "diff"])
    def test_missing_file(self, command, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        argv = [command, missing] + ([missing] if command == "diff" else [])
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        self._assert_one_error_line(capsys)

    @pytest.mark.parametrize("command", ["report", "diff"])
    def test_truncated_json(self, command, tmp_path, capsys):
        path = tmp_path / "cut.json"
        path.write_text('{"traceEvents": [')
        argv = [command, str(path)] + (
            [str(path)] if command == "diff" else []
        )
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        self._assert_one_error_line(capsys)

    @pytest.mark.parametrize("command", ["report", "diff"])
    def test_wrong_shape_json(self, command, tmp_path, capsys):
        path = tmp_path / "other.json"
        path.write_text('{"hello": "world"}')
        argv = [command, str(path)] + (
            [str(path)] if command == "diff" else []
        )
        with pytest.raises(SystemExit) as exc:
            main(argv)
        assert exc.value.code == 2
        self._assert_one_error_line(capsys)


class TestAnalyze:
    def test_analyze_outputs_breakevens(self, capsys):
        code = main(["analyze", "--app", "photo_backup"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Lint: clean." in out
        assert "crossover" in out
        assert "Edge breakeven" in out
        assert "jobs/hour" in out

    def test_analyze_all_catalog_apps(self, capsys):
        from repro.apps.catalog import CATALOG

        for name in CATALOG:
            assert main(["analyze", "--app", name]) == 0


class TestPipeline:
    def test_pipeline_promotes(self, capsys):
        code = main(
            ["pipeline", "--app", "nightly_analytics", "--canary-jobs", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PROMOTED" in out
        assert "deploy-canary" in out


class TestFleet:
    def _argv(self, tmp_path, tag, shards, workers=1, extra=()):
        return [
            "fleet",
            "--zones", "3", "--ues-per-zone", "2",
            "--window", "600", "--slack", "1200",
            "--shards", str(shards), "--workers", str(workers),
            "--out", str(tmp_path / f"fleet-{tag}.json"),
            *extra,
        ]

    def test_fleet_reports_metrics(self, tmp_path, capsys):
        import json

        assert main(self._argv(tmp_path, "a", 2)) == 0
        out = capsys.readouterr().out
        assert "Sharded fleet report" in out
        assert "exact" in out
        document = json.loads((tmp_path / "fleet-a.json").read_text())
        assert document["schema"] == "repro.fleet.sharded/1"
        assert document["aggregates"]["jobs_completed"] == 6

    def test_fleet_byte_identical_across_shards_and_workers(self, tmp_path):
        main(self._argv(tmp_path, "1s", 1))
        main(self._argv(tmp_path, "4s", 4, workers=2))
        one = (tmp_path / "fleet-1s.json").read_bytes()
        four = (tmp_path / "fleet-4s.json").read_bytes()
        assert one == four

    def test_fleet_split_coupled_prints_bound(self, tmp_path, capsys):
        argv = self._argv(
            tmp_path, "split", 4,
            extra=("--couple", "pairs", "--split-coupled", "--zones", "4"),
        )
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "bounded-error" in out
        assert "error bound" in out
