"""Tests for serverless memory allocation (contribution C2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps import photo_backup_app
from repro.core.allocation import (
    AllocationDecision,
    MemoryAllocator,
    pareto_frontier,
)
from repro.core.demand import DemandModel
from repro.core.partitioning import Partition
from repro.profiling import Profiler
from repro.serverless.function import FULL_VCPU_MB, STANDARD_MEMORY_TIERS_MB
from repro.sim.rng import RngStream


@pytest.fixture
def allocator():
    return MemoryAllocator()


class TestCurve:
    def test_duration_nonincreasing_cost_behaviour(self, allocator):
        curve = allocator.curve(work_gcycles=10.0, parallel_fraction=0.0)
        durations = [p.duration_s for p in curve]
        assert all(a >= b - 1e-9 for a, b in zip(durations, durations[1:]))
        # Serial work: cost at the top tier clearly exceeds the minimum.
        costs = [p.cost_usd for p in curve]
        assert max(costs) > 2 * min(costs)

    def test_curve_covers_all_tiers(self, allocator):
        curve = allocator.curve(1.0)
        assert [p.memory_mb for p in curve] == sorted(set(STANDARD_MEMORY_TIERS_MB))


class TestCheapest:
    def test_serial_picks_full_vcpu(self, allocator):
        """Power-Tuning shape: within the flat-cost band, fastest wins —
        one full vCPU for serial code."""
        decision = allocator.cheapest("f", work_gcycles=10.0)
        assert decision.memory_mb == FULL_VCPU_MB

    def test_parallel_extends_band(self, allocator):
        serial = allocator.cheapest("s", 10.0, parallel_fraction=0.0)
        parallel = allocator.cheapest("p", 10.0, parallel_fraction=0.95)
        assert parallel.memory_mb >= serial.memory_mb

    def test_slo_forces_bigger_memory(self, allocator):
        loose = allocator.cheapest("f", 10.0, parallel_fraction=0.9)
        tight = allocator.cheapest(
            "f", 10.0, parallel_fraction=0.9, latency_slo_s=1.5
        )
        assert tight.memory_mb > loose.memory_mb
        assert tight.expected_duration_s <= 1.5

    def test_infeasible_slo_raises(self, allocator):
        with pytest.raises(ValueError, match="SLO"):
            allocator.cheapest("f", 1000.0, latency_slo_s=0.001)

    def test_memory_floor_respected(self, allocator):
        decision = allocator.cheapest("f", 10.0, min_memory_mb=3000.0)
        assert decision.memory_mb >= 3000.0

    def test_floor_above_all_tiers_raises(self, allocator):
        with pytest.raises(ValueError, match="floor"):
            allocator.cheapest("f", 1.0, min_memory_mb=99999.0)

    def test_decision_validation(self):
        with pytest.raises(ValueError):
            AllocationDecision("f", memory_mb=0.0, expected_duration_s=1.0,
                               expected_cost_usd=1.0)

    @given(
        work=st.floats(min_value=0.1, max_value=500.0),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_cheapest_is_truly_cheapest_within_tolerance(self, work, p):
        allocator = MemoryAllocator()
        decision = allocator.cheapest("f", work, parallel_fraction=p)
        curve = allocator.curve(work, p)
        min_cost = min(point.cost_usd for point in curve)
        assert decision.expected_cost_usd <= min_cost * (1 + allocator.cost_tolerance) + 1e-12

    @given(
        work=st.floats(min_value=0.5, max_value=100.0),
        p=st.floats(min_value=0.0, max_value=1.0),
        slo=st.floats(min_value=0.5, max_value=60.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_slo_always_respected_when_feasible(self, work, p, slo):
        allocator = MemoryAllocator()
        try:
            decision = allocator.cheapest("f", work, p, latency_slo_s=slo)
        except ValueError:
            return  # infeasible SLO is a legal outcome
        assert decision.expected_duration_s <= slo + 1e-12


class TestFastest:
    def test_fastest_minimises_duration(self, allocator):
        decision = allocator.fastest("f", 10.0, parallel_fraction=0.9)
        curve = allocator.curve(10.0, 0.9)
        assert decision.expected_duration_s == pytest.approx(
            min(p.duration_s for p in curve)
        )

    def test_serial_fastest_prefers_cheapest_tie(self, allocator):
        """Serial durations are flat above one vCPU: the tie must break
        toward the cheaper (smaller) size, not 10 GB."""
        decision = allocator.fastest("f", 10.0, parallel_fraction=0.0)
        assert decision.memory_mb == FULL_VCPU_MB


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["scan", "convex", "coarse"])
    def test_strategies_agree_on_serial_work(self, strategy):
        allocator = MemoryAllocator(strategy=strategy)
        decision = allocator.cheapest("f", 20.0, parallel_fraction=0.0)
        assert decision.memory_mb == FULL_VCPU_MB

    def test_convex_uses_fewer_probes(self):
        scan = MemoryAllocator(strategy="scan").cheapest("f", 20.0)
        convex = MemoryAllocator(strategy="convex").cheapest("f", 20.0)
        assert convex.probes < scan.probes

    @given(
        work=st.floats(min_value=0.5, max_value=200.0),
        p=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_convex_matches_scan(self, work, p):
        scan = MemoryAllocator(strategy="scan").cheapest("f", work, p)
        convex = MemoryAllocator(strategy="convex").cheapest("f", work, p)
        assert convex.memory_mb == scan.memory_mb

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            MemoryAllocator(strategy="magic")

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            MemoryAllocator(tiers_mb=())
        with pytest.raises(ValueError):
            MemoryAllocator(tiers_mb=(0.0,))
        with pytest.raises(ValueError):
            MemoryAllocator(coarse_stride=0)
        with pytest.raises(ValueError):
            MemoryAllocator(cost_tolerance=-0.1)


class TestAllocateApp:
    def make_trained_model(self, app):
        model = DemandModel(app)
        profiler = Profiler(RngStream(0), noise_sigma=0.05)
        model.observe_profile(profiler.profile(app, [1.0, 2.0, 5.0], 3))
        return model

    def test_only_cloud_components_sized(self):
        app = photo_backup_app()
        model = self.make_trained_model(app)
        allocator = MemoryAllocator()
        partition = Partition(app.name, frozenset({"transcode", "feature_extract"}))
        decisions = allocator.allocate_app(app, partition, model, input_mb=2.0)
        assert set(decisions) == {"transcode", "feature_extract"}

    def test_empty_partition_empty_allocation(self):
        app = photo_backup_app()
        model = self.make_trained_model(app)
        decisions = MemoryAllocator().allocate_app(
            app, Partition.local_only(app), model, input_mb=2.0
        )
        assert decisions == {}

    def test_slo_budget_split(self):
        app = photo_backup_app()
        model = self.make_trained_model(app)
        partition = Partition.full_offload(app)
        decisions = MemoryAllocator().allocate_app(
            app, partition, model, input_mb=2.0, latency_slo_s=30.0
        )
        total_expected = sum(d.expected_duration_s for d in decisions.values())
        assert total_expected <= 30.0 + 1e-9

    def test_function_specs_materialised(self):
        app = photo_backup_app()
        model = self.make_trained_model(app)
        partition = Partition(app.name, frozenset({"transcode"}))
        allocator = MemoryAllocator()
        decisions = allocator.allocate_app(app, partition, model, 2.0)
        specs = allocator.function_specs(app, decisions)
        assert len(specs) == 1
        assert specs[0].name == "photo_backup.transcode"
        assert specs[0].package_mb == app.component("transcode").package_mb


class TestParetoFrontier:
    def test_frontier_sorted_and_nondominated(self, allocator):
        curve = allocator.curve(10.0, parallel_fraction=0.5)
        frontier = pareto_frontier(curve)
        durations = [p.duration_s for p in frontier]
        costs = [p.cost_usd for p in frontier]
        assert durations == sorted(durations)
        assert costs == sorted(costs, reverse=True)

    def test_frontier_subset_of_curve(self, allocator):
        curve = allocator.curve(5.0)
        frontier = pareto_frontier(curve)
        assert set(p.memory_mb for p in frontier) <= set(p.memory_mb for p in curve)
