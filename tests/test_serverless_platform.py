"""Tests for the serverless platform simulator (cold/warm/queue/billing)."""

import pytest

from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    PlatformConfig,
    ServerlessPlatform,
    ThrottledError,
)
from repro.sim import Simulator


def make_platform(sim, **config_kwargs):
    defaults = dict(keep_alive_s=60.0, cold_start_base_s=0.5,
                    cold_start_per_package_mb_s=0.0)
    defaults.update(config_kwargs)
    return ServerlessPlatform(sim, PlatformConfig(**defaults))


def run_invocations(sim, platform, requests, gap_s=0.0):
    """Submit requests (optionally spaced) and return completed records."""
    records = []

    def driver(sim):
        for i, request in enumerate(requests):
            if gap_s and i:
                yield sim.timeout(gap_s)
            record = yield platform.invoke(request)
            records.append(record)

    sim.run(until=sim.spawn(driver(sim)))
    return records


@pytest.fixture
def sim():
    return Simulator()


class TestDeployment:
    def test_deploy_and_lookup(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1024))
        assert platform.is_deployed("f")
        assert platform.spec("f").memory_mb == 1024
        assert platform.deployed_functions() == ["f"]

    def test_invoke_unknown_function_rejected(self, sim):
        platform = make_platform(sim)
        with pytest.raises(KeyError):
            platform.invoke(InvocationRequest("ghost", 1.0))

    def test_redeploy_discards_warm_pool(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        run_invocations(sim, platform, [InvocationRequest("f", 1.0)])
        assert platform.warm_pool_size("f") == 1
        platform.deploy(FunctionSpec("f", memory_mb=2048, package_mb=0))
        assert platform.warm_pool_size("f") == 0

    def test_undeploy(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f"))
        platform.undeploy("f")
        assert not platform.is_deployed("f")

    def test_undeploy_with_warm_pool_is_fine(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", package_mb=0))
        run_invocations(sim, platform, [InvocationRequest("f", 1.0)])
        platform.undeploy("f")  # idle instance, no in-flight work


class TestColdWarmStarts:
    def test_first_invocation_is_cold(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        records = run_invocations(sim, platform, [InvocationRequest("f", 2.4)])
        record = records[0]
        assert record.cold_start
        assert record.started_at == pytest.approx(0.5)  # cold_start_base_s
        assert record.execution_time == pytest.approx(1.0)

    def test_second_invocation_is_warm(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        records = run_invocations(
            sim, platform,
            [InvocationRequest("f", 2.4), InvocationRequest("f", 2.4)],
        )
        assert records[0].cold_start
        assert not records[1].cold_start
        assert records[1].queue_delay == pytest.approx(0.0)

    def test_keep_alive_expiry_causes_cold_start(self, sim):
        platform = make_platform(sim, keep_alive_s=10.0)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        records = run_invocations(
            sim, platform,
            [InvocationRequest("f", 0.24), InvocationRequest("f", 0.24)],
            gap_s=30.0,
        )
        assert records[0].cold_start
        assert records[1].cold_start

    def test_package_size_slows_cold_start(self, sim):
        platform = make_platform(sim, cold_start_per_package_mb_s=0.01)
        platform.deploy(FunctionSpec("big", memory_mb=1769, package_mb=200))
        records = run_invocations(sim, platform, [InvocationRequest("big", 0.0)])
        assert records[0].queue_delay == pytest.approx(0.5 + 2.0)

    def test_cold_start_fraction(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        run_invocations(
            sim, platform, [InvocationRequest("f", 0.24) for _ in range(4)]
        )
        assert platform.cold_start_fraction("f") == pytest.approx(0.25)

    def test_cold_start_fraction_empty(self, sim):
        platform = make_platform(sim)
        assert platform.cold_start_fraction() == 0.0


class TestConcurrencyAndQueueing:
    def test_concurrent_up_to_limit(self, sim):
        platform = make_platform(sim, default_concurrency=3)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        events = [platform.invoke(InvocationRequest("f", 2.4)) for _ in range(3)]

        def join(sim):
            got = yield sim.all_of(events)
            return sorted(r.finished_at for r in got.values())

        finishes = sim.run(until=sim.spawn(join(sim)))
        assert finishes == pytest.approx([1.5, 1.5, 1.5])

    def test_excess_queues_fifo(self, sim):
        platform = make_platform(sim, default_concurrency=1)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        events = [
            platform.invoke(InvocationRequest("f", 2.4, tag=f"r{i}"))
            for i in range(3)
        ]

        def join(sim):
            got = yield sim.all_of(events)
            return sorted((r.finished_at, r.request.tag) for r in got.values())

        order = sim.run(until=sim.spawn(join(sim)))
        assert [tag for _t, tag in order] == ["r0", "r1", "r2"]
        # One cold start, then warm handoffs with no extra cold delay.
        assert order[0][0] == pytest.approx(1.5)
        assert order[1][0] == pytest.approx(2.5)
        assert order[2][0] == pytest.approx(3.5)

    def test_queued_handoff_is_warm(self, sim):
        platform = make_platform(sim, default_concurrency=1)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        events = [platform.invoke(InvocationRequest("f", 2.4)) for _ in range(2)]

        def join(sim):
            got = yield sim.all_of(events)
            return [r.cold_start for r in got.values()]

        colds = sim.run(until=sim.spawn(join(sim)))
        assert sorted(colds) == [False, True]

    def test_per_function_concurrency_override(self, sim):
        platform = make_platform(sim, default_concurrency=100)
        platform.deploy(
            FunctionSpec("f", memory_mb=1769, package_mb=0, concurrency_limit=1)
        )
        events = [platform.invoke(InvocationRequest("f", 2.4)) for _ in range(2)]

        def join(sim):
            got = yield sim.all_of(events)
            return sorted(r.finished_at for r in got.values())

        finishes = sim.run(until=sim.spawn(join(sim)))
        assert finishes[1] == pytest.approx(finishes[0] + 1.0)

    def test_throttling(self, sim):
        platform = make_platform(sim, default_concurrency=1, max_queue_per_function=1)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        outcomes = []

        def driver(sim):
            events = [platform.invoke(InvocationRequest("f", 2.4)) for _ in range(3)]
            for event in events:
                try:
                    yield event
                    outcomes.append("ok")
                except ThrottledError:
                    outcomes.append("throttled")

        sim.run(until=sim.spawn(driver(sim)))
        assert outcomes.count("throttled") == 1
        assert outcomes.count("ok") == 2


class TestBillingIntegration:
    def test_invocation_cost_accrues(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1024, package_mb=0))
        records = run_invocations(sim, platform, [InvocationRequest("f", 2.4)])
        assert platform.total_cost == pytest.approx(records[0].cost)
        assert platform.function_cost("f").total == pytest.approx(records[0].cost)

    def test_cost_matches_billing_model(self, sim):
        platform = make_platform(sim)
        spec = FunctionSpec("f", memory_mb=2048, package_mb=0)
        platform.deploy(spec)
        records = run_invocations(sim, platform, [InvocationRequest("f", 4.8)])
        expected = platform.config.billing.invocation_cost(
            records[0].execution_time, 2048
        ).total
        assert records[0].cost == pytest.approx(expected)

    def test_estimates_match_spec(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        assert platform.estimate_duration("f", 2.4) == pytest.approx(1.0)
        assert platform.estimate_cost("f", 2.4) > 0

    def test_metrics_recorded(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        run_invocations(sim, platform, [InvocationRequest("f", 2.4)])
        snap = platform.metrics.snapshot()
        assert snap["faas.invocations"] == 1
        assert snap["faas.cold_starts"] == 1
