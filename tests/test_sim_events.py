"""Unit tests for repro.sim.events."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Event,
    EventAlreadyTriggered,
    Interrupt,
    Simulator,
    Timeout,
)


@pytest.fixture
def sim():
    return Simulator()


class TestEvent:
    def test_starts_pending(self, sim):
        event = sim.event()
        assert not event.triggered
        assert not event.processed

    def test_value_unavailable_while_pending(self, sim):
        event = sim.event()
        with pytest.raises(AttributeError):
            _ = event.value

    def test_succeed_delivers_value(self, sim):
        event = sim.event()
        event.succeed(41)
        assert event.triggered
        assert event.ok
        assert event.value == 41

    def test_fail_stores_exception(self, sim):
        event = sim.event()
        error = RuntimeError("boom")
        event.fail(error)
        assert event.triggered
        assert not event.ok
        assert event.value is error

    def test_double_succeed_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.succeed()

    def test_fail_after_succeed_rejected(self, sim):
        event = sim.event()
        event.succeed()
        with pytest.raises(EventAlreadyTriggered):
            event.fail(ValueError("late"))

    def test_fail_requires_exception_instance(self, sim):
        event = sim.event()
        with pytest.raises(TypeError):
            event.fail("not an exception")  # type: ignore[arg-type]

    def test_callbacks_run_when_processed(self, sim):
        event = sim.event()
        seen = []
        event.callbacks.append(lambda e: seen.append(e.value))
        event.succeed("payload")
        assert seen == []  # not yet processed
        sim.run()
        assert seen == ["payload"]


class TestTimeout:
    def test_fires_after_delay(self, sim):
        timeout = sim.timeout(5.0)
        sim.run()
        assert timeout.processed
        assert sim.now == 5.0

    def test_zero_delay_is_legal(self, sim):
        sim.timeout(0.0)
        sim.run()
        assert sim.now == 0.0

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ValueError):
            sim.timeout(-1.0)

    def test_carries_value(self, sim):
        result = []

        def proc(sim):
            got = yield sim.timeout(1.0, value="tick")
            result.append(got)

        sim.spawn(proc(sim))
        sim.run()
        assert result == ["tick"]


class TestAllOf:
    def test_waits_for_every_event(self, sim):
        collected = []

        def proc(sim):
            timeouts = [sim.timeout(t) for t in (3.0, 1.0, 2.0)]
            yield sim.all_of(timeouts)
            collected.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert collected == [3.0]

    def test_value_maps_children(self, sim):
        out = {}

        def proc(sim):
            a = sim.timeout(1.0, value="a")
            b = sim.timeout(2.0, value="b")
            got = yield sim.all_of([a, b])
            out.update({v for v in got.values()} and got)

        sim.spawn(proc(sim))
        sim.run()
        assert sorted(out.values()) == ["a", "b"]

    def test_empty_succeeds_immediately(self, sim):
        condition = sim.all_of([])
        assert condition.triggered

    def test_propagates_first_failure(self, sim):
        failures = []

        def failer(sim):
            yield sim.timeout(1.0)
            raise ValueError("dead")

        def waiter(sim, target):
            try:
                yield sim.all_of([target, sim.timeout(10.0)])
            except ValueError as error:
                failures.append((sim.now, str(error)))

        target = sim.spawn(failer(sim))
        sim.spawn(waiter(sim, target))
        sim.run()
        assert failures == [(1.0, "dead")]

    def test_mixed_simulators_rejected(self, sim):
        other = Simulator()
        with pytest.raises(ValueError):
            sim.all_of([sim.timeout(1), other.timeout(1)])

    def test_already_processed_children(self, sim):
        t1 = sim.timeout(1.0, value="x")
        sim.run()  # t1 now processed
        done = []

        def proc(sim):
            got = yield sim.all_of([t1])
            done.append(got[t1])

        sim.spawn(proc(sim))
        sim.run()
        assert done == ["x"]


class TestAnyOf:
    def test_fires_on_first(self, sim):
        moments = []

        def proc(sim):
            yield sim.any_of([sim.timeout(5.0), sim.timeout(2.0), sim.timeout(9.0)])
            moments.append(sim.now)

        sim.spawn(proc(sim))
        sim.run()
        assert moments == [2.0]

    def test_fails_only_when_all_fail(self, sim):
        outcomes = []

        def failer(sim, delay):
            yield sim.timeout(delay)
            raise RuntimeError(f"f{delay}")

        def waiter(sim, targets):
            try:
                yield sim.any_of(targets)
            except RuntimeError as error:
                outcomes.append((sim.now, str(error)))

        targets = [sim.spawn(failer(sim, d)) for d in (1.0, 2.0)]
        sim.spawn(waiter(sim, targets))
        sim.run()
        assert outcomes == [(2.0, "f2.0")]

    def test_one_failure_does_not_kill(self, sim):
        results = []

        def failer(sim):
            yield sim.timeout(1.0)
            raise RuntimeError("early fail")

        def waiter(sim, target):
            got = yield sim.any_of([target, sim.timeout(3.0, value="ok")])
            results.append((sim.now, list(got.values())))

        target = sim.spawn(failer(sim))
        sim.spawn(waiter(sim, target))
        sim.run()
        assert results == [(3.0, ["ok"])]


class TestInterrupt:
    def test_carries_cause(self):
        interrupt = Interrupt(cause={"reason": "battery"})
        assert interrupt.cause == {"reason": "battery"}
