"""Tests for the end-to-end offloading controller."""

import math

import pytest

from repro import (
    DeadlineBatcher,
    EagerScheduler,
    Environment,
    Job,
    ObjectiveWeights,
    OffloadController,
    photo_backup_app,
)
from repro.core.partitioning import FixedPartitioner, Partition
from repro.device.ue import DeviceSpec


def make_controller(seed=0, app=None, **kwargs):
    env = Environment.build(seed=seed, connectivity="4g")
    app = app or photo_backup_app()
    return OffloadController(env, app, **kwargs)


class TestPlanning:
    def test_plan_deploys_cloud_functions(self):
        controller = make_controller()
        controller.profile_offline()
        partition = controller.plan(input_mb=4.0)
        platform = controller.env.platform
        for name in partition.cloud:
            assert platform.is_deployed(f"photo_backup.{name}")
        assert set(controller.allocation) == set(partition.cloud)

    def test_pinned_never_deployed(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        assert not controller.env.platform.is_deployed("photo_backup.capture")

    def test_replanning_is_idempotent_without_change(self):
        controller = make_controller()
        controller.profile_offline()
        first = controller.plan(input_mb=4.0)
        # Touch the warm pool, replan with the same inputs: pools survive
        # because nothing redeploys.
        second = controller.plan(input_mb=4.0)
        assert first == second

    def test_estimate_completion_positive_and_conservative(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        job = Job(controller.app, input_mb=4.0)
        estimate = controller.estimate_completion(job)
        assert estimate > 0

    def test_submitting_foreign_job_rejected(self):
        from repro.apps import ml_training_app

        controller = make_controller()
        with pytest.raises(ValueError):
            controller.submit(Job(ml_training_app()))

    def test_replan_every_validation(self):
        with pytest.raises(ValueError):
            make_controller(replan_every=0)


class TestExecution:
    def test_single_job_completes(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        job = Job(controller.app, input_mb=4.0, deadline=3600.0)
        report = controller.run_workload([job])
        assert report.jobs_completed == 1
        assert not report.failures
        result = report.results[0]
        assert result.finished_at > result.started_at
        assert set(result.component_finish_times) == set(
            controller.app.component_names
        )

    def test_component_order_respects_dag(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=2.0)
        report = controller.run_workload([Job(controller.app, input_mb=2.0)])
        finish = report.results[0].component_finish_times
        for flow in controller.app.flows:
            assert finish[flow.src] <= finish[flow.dst]

    def test_energy_and_cost_accounted(self):
        controller = make_controller()
        controller.profile_offline()
        partition = controller.plan(input_mb=4.0)
        report = controller.run_workload([Job(controller.app, input_mb=4.0)])
        result = report.results[0]
        assert result.ue_energy_j > 0
        if partition.cloud:
            assert result.cloud_cost_usd > 0
            assert result.cloud_cost_usd == pytest.approx(
                controller.env.platform.total_cost
            )

    def test_local_only_partition_runs_entirely_on_ue(self):
        app = photo_backup_app()
        controller = make_controller(
            app=app, partitioner=FixedPartitioner(Partition.local_only(app))
        )
        controller.plan(input_mb=2.0)
        report = controller.run_workload([Job(app, input_mb=2.0)])
        assert report.results[0].cloud_cost_usd == 0.0
        assert controller.env.platform.total_cost == 0.0

    def test_auto_plan_on_first_submit(self):
        controller = make_controller()
        report = controller.run_workload([Job(controller.app, input_mb=1.0)])
        assert report.jobs_completed == 1
        assert controller.partition is not None

    def test_multiple_jobs_all_complete(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=2.0)
        jobs = [
            Job(controller.app, input_mb=2.0, released_at=20.0 * i)
            for i in range(8)
        ]
        report = controller.run_workload(jobs)
        assert report.jobs_completed == 8
        finishes = [r.finished_at for r in report.results]
        assert finishes == sorted(finishes)


class TestScheduling:
    def test_batcher_defers_dispatch(self):
        eager = make_controller(seed=1, scheduler=EagerScheduler())
        eager.profile_offline()
        eager.plan(input_mb=2.0)
        eager_report = eager.run_workload(
            [Job(eager.app, input_mb=2.0, released_at=10.0, deadline=7200.0)]
        )

        batched = make_controller(
            seed=1, scheduler=DeadlineBatcher(window_s=600.0)
        )
        batched.profile_offline()
        batched.plan(input_mb=2.0)
        batched_report = batched.run_workload(
            [Job(batched.app, input_mb=2.0, released_at=10.0, deadline=7200.0)]
        )
        assert (
            batched_report.results[0].started_at
            > eager_report.results[0].started_at + 500.0
        )
        assert batched_report.deadline_miss_rate == 0.0

    def test_deadline_miss_recorded(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        impossible = Job(controller.app, input_mb=4.0, deadline=0.001)
        report = controller.run_workload([impossible])
        assert report.deadline_miss_rate == 1.0


class TestAdaptivity:
    def test_online_observations_accumulate(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=2.0)
        before = controller.demand.estimators["transcode"].observation_count
        controller.run_workload([Job(controller.app, input_mb=2.0)])
        after = controller.demand.estimators["transcode"].observation_count
        assert after == before + 1

    def test_adaptive_replans(self):
        controller = make_controller(adaptive=True, replan_every=2)
        controller.profile_offline()
        controller.plan(input_mb=2.0)
        jobs = [
            Job(controller.app, input_mb=2.0, released_at=10.0 * i)
            for i in range(5)
        ]
        report = controller.run_workload(jobs)
        assert report.jobs_completed == 5


class TestBatteryFailure:
    def test_depletion_recorded_as_failure(self):
        env = Environment.build(seed=0, device=DeviceSpec(battery_capacity_j=0.5))
        app = photo_backup_app()
        controller = OffloadController(
            env, app, partitioner=FixedPartitioner(Partition.local_only(app))
        )
        controller.plan(input_mb=10.0)
        report = controller.run_workload([Job(app, input_mb=10.0)])
        assert len(report.failures) == 1
        assert report.jobs_completed == 0
        assert report.deadline_miss_rate == 1.0


class TestAdmissionControl:
    def test_unmeetable_job_rejected_without_execution(self):
        from repro.core.controller import JobRejectedError

        env = Environment.build(seed=4)
        controller = make_controller(seed=4, admission_control=True)
        controller = OffloadController(
            env, photo_backup_app(), admission_control=True
        )
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        start_battery = env.ue.battery_level_j
        impossible = Job(controller.app, input_mb=4.0, deadline=0.5)
        report = controller.run_workload([impossible])
        assert report.rejections == 1
        assert report.jobs_completed == 0
        assert isinstance(report.failures[0].error, JobRejectedError)
        # Nothing ran: no energy drained, no invocations billed.
        assert env.ue.battery_level_j == start_battery
        assert env.platform.total_cost == 0.0

    def test_feasible_job_admitted(self):
        controller = make_controller(seed=5, admission_control=True)
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        job = Job(controller.app, input_mb=4.0, deadline=3600.0)
        report = controller.run_workload([job])
        assert report.rejections == 0
        assert report.jobs_completed == 1

    def test_best_effort_jobs_never_rejected(self):
        controller = make_controller(seed=6, admission_control=True)
        report = controller.run_workload([Job(controller.app, input_mb=2.0)])
        assert report.rejections == 0
        assert report.jobs_completed == 1

    def test_off_by_default(self):
        controller = make_controller(seed=7)
        impossible = Job(controller.app, input_mb=4.0, deadline=0.5)
        report = controller.run_workload([impossible])
        assert report.rejections == 0  # ran and missed instead
        assert report.jobs_completed == 1
        assert report.deadline_miss_rate == 1.0


class TestFailureInjectionIntegration:
    def test_retries_absorb_transient_failures(self):
        from repro.serverless import PlatformConfig, RetryPolicy

        env = Environment.build(
            seed=3, platform_config=PlatformConfig(failure_probability=0.25)
        )
        controller = OffloadController(
            env,
            photo_backup_app(),
            retry_policy=RetryPolicy(max_attempts=5, base_delay_s=0.5),
        )
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        jobs = [
            Job(controller.app, input_mb=3.0, released_at=30.0 * i,
                deadline=30.0 * i + 3600.0)
            for i in range(8)
        ]
        report = controller.run_workload(jobs)
        assert report.jobs_completed == 8
        assert not report.failures
        assert env.metrics.snapshot()["faas.failures"] > 0
        # Job costs include the wasted failed attempts, matching the
        # platform's own bill.
        assert report.total_cloud_cost_usd == pytest.approx(
            env.platform.total_cost
        )

    def test_exhausted_retries_fail_the_job(self):
        from repro.serverless import PlatformConfig, RetryPolicy

        env = Environment.build(
            seed=5, platform_config=PlatformConfig(failure_probability=0.97)
        )
        controller = OffloadController(
            env,
            photo_backup_app(),
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=0.1),
        )
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        report = controller.run_workload(
            [Job(controller.app, input_mb=3.0, deadline=3600.0)]
        )
        assert len(report.failures) == 1
        assert report.deadline_miss_rate == 1.0


class TestReport:
    def test_percentiles(self):
        controller = make_controller()
        controller.profile_offline()
        controller.plan(input_mb=1.0)
        jobs = [
            Job(controller.app, input_mb=1.0, released_at=5.0 * i) for i in range(6)
        ]
        report = controller.run_workload(jobs)
        assert report.percentile_response_s(0) <= report.percentile_response_s(99)
        assert report.mean_response_s > 0

    def test_empty_report_stats(self):
        from repro.core.controller import ControllerReport

        report = ControllerReport()
        assert report.deadline_miss_rate == 0.0
        assert math.isnan(report.mean_response_s)
        assert math.isnan(report.percentile_response_s(50))
