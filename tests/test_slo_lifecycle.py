"""Alert lifecycle regression tests: every FIRING gets a terminal state.

An alert that is still burning when the run ends used to stay FIRING
forever — no CLEARED line, health rollups counting it active with no way
to distinguish "recovered" from "truncated".  :meth:`SLOEngine.finalize`
closes the books: still-active alerts are force-closed at the horizon
with ``final=True``, the log gains a terminal ``CLEARED ... final=true``
line, and health keeps treating them as unresolved.
"""

import pytest

from repro.apps import Job, photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.faults import FaultKind, FaultSchedule, FaultWindow, inject_faults
from repro.monitor import AvailabilitySLO, BurnRateRule, Monitor, SLOEngine
from repro.monitor.fleet import (
    FLEET_RULES,
    default_fleet_rule_overrides,
    live_fleet_slos,
)
from repro.monitor.monitor import attach_monitor
from repro.serverless import RetryPolicy
from repro.telemetry import attach_tracer


class _Clock:
    def __init__(self, now=0.0):
        self.now = now


class _Span:
    def __init__(self, category, name, start, end, **attributes):
        self.category = category
        self.name = name
        self.start = start
        self.end = end
        self.attributes = attributes

    @property
    def duration(self):
        return self.end - self.start


def _burning_engine(at=100.0):
    """An engine with one alert fired at ``at`` and still burning."""
    monitor = Monitor(_Clock(at))
    for _ in range(20):
        monitor.on_span_end(
            _Span("execute", "app.f", at - 1.0, at, tier="cloud", error="X")
        )
    engine = SLOEngine(
        monitor,
        [AvailabilitySLO("availability:test", objective=0.95)],
        rules=(BurnRateRule("r", 60.0, 300.0, 1.0, min_events=1),),
    )
    engine.evaluate(at)
    assert len(engine.active_alerts()) == 1
    return engine


class TestFinalize:
    def test_forces_a_terminal_cleared_state(self):
        engine = _burning_engine(at=100.0)
        closed = engine.finalize(130.0)
        assert [a.final for a in closed] == [True]
        assert closed[0].cleared_at == 130.0
        assert not closed[0].active
        assert not closed[0].resolved  # forced close is not a recovery
        assert engine.active_alerts() == []
        assert engine.alert_log().splitlines()[-1] == (
            "t=130.0 CLEARED slo=availability:test rule=r severity=page "
            "entity=zone/faas final=true"
        )

    def test_is_idempotent_at_the_same_instant(self):
        engine = _burning_engine()
        engine.finalize(130.0)
        assert engine.finalize(130.0) == []
        assert len(engine.alert_log().splitlines()) == 2  # FIRING + CLEARED

    def test_rejects_a_second_horizon(self):
        engine = _burning_engine()
        engine.finalize(130.0)
        with pytest.raises(ValueError, match="finalize"):
            engine.finalize(140.0)

    def test_health_still_counts_final_alerts_as_unresolved(self):
        engine = _burning_engine()
        engine.finalize(130.0)
        health = engine.health(130.0)
        assert health["zone/faas"]["status"] == "critical"
        assert engine.unresolved_alerts()[0].final is True

    def test_organic_clear_is_not_final(self):
        engine = _burning_engine(at=100.0)
        engine.evaluate(1000.0)  # both windows empty -> organic clear
        assert engine.finalize(1000.0) == []  # nothing left to force
        alert = engine.alerts[0]
        assert alert.resolved and not alert.final
        assert "final=true" not in engine.alert_log()

    def test_to_dict_marks_only_final_alerts(self):
        engine = _burning_engine()
        engine.finalize(130.0)
        payload = engine.alerts[0].to_dict()
        assert payload["final"] is True
        organic = _burning_engine(at=100.0)
        organic.evaluate(1000.0)
        assert "final" not in organic.alerts[0].to_dict()


class TestListeners:
    class _Recorder:
        def __init__(self):
            self.events = []

        def on_alert_fired(self, alert, now):
            self.events.append(("fired", alert.slo, now))

        def on_alert_cleared(self, alert, now):
            self.events.append(("cleared", alert.slo, now))

    def test_subscribe_sees_fires_and_organic_clears(self):
        engine = _burning_engine(at=100.0)
        recorder = self._Recorder()
        engine.subscribe(recorder)
        engine.evaluate(1000.0)
        assert recorder.events == [("cleared", "availability:test", 1000.0)]

    def test_forced_close_does_not_notify(self):
        # finalize is bookkeeping, not a recovery signal: remediation
        # must not tear down mitigations because the run merely ended.
        engine = _burning_engine()
        recorder = self._Recorder()
        engine.subscribe(recorder)
        engine.finalize(130.0)
        assert recorder.events == []


class TestOutageStraddlingSimEnd:
    """The original bug, end to end: a zone outage that outlives the
    workload leaves availability alerts burning at sim end; finalize
    must give them a terminal CLEARED while health stays critical."""

    def _run(self):
        env = Environment.build_custom(
            seed=7, uplink_bandwidth=2.0e6, access_latency_s=0.030
        )
        attach_tracer(env)
        # The outage opens mid-run and extends far past the horizon.
        inject_faults(
            env,
            FaultSchedule(
                [FaultWindow(FaultKind.ZONE_OUTAGE, 120.0, 5000.0)]
            ),
        )
        controller = OffloadController(
            env,
            photo_backup_app(),
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=1.0, multiplier=2.0
            ),
        )
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        monitor = attach_monitor(env)
        slos = live_fleet_slos("faas")
        engine = SLOEngine(
            monitor,
            slos,
            rules=FLEET_RULES,
            eval_interval_s=30.0,
            rule_overrides=default_fleet_rule_overrides(slos),
        )
        engine.attach(env.sim)
        jobs = [
            Job(
                controller.app,
                input_mb=3.0,
                released_at=60.0 * i,
                deadline=60.0 * i + 240.0,
                job_id=100 + i,
            )
            for i in range(4)
        ]
        controller.run_workload(jobs)
        return engine, float(env.sim.now)

    def test_alerts_burning_at_end_get_terminal_cleared(self):
        engine, end = self._run()
        assert engine.active_alerts(), "outage should still be burning"
        closed = engine.finalize(end)
        assert closed and all(a.final for a in closed)
        assert engine.active_alerts() == []
        log = engine.alert_log().splitlines()
        assert any("FIRING slo=availability:faas" in line for line in log)
        fired = sum(1 for line in log if " FIRING " in line)
        cleared = sum(1 for line in log if " CLEARED " in line)
        assert fired == cleared  # every FIRING has a terminal state
        assert all(
            line.endswith("final=true")
            for line in log
            if " CLEARED " in line
        )
        assert engine.health(end)["zone/faas"]["status"] == "critical"
