"""Tests for cross-run artifact diffing (``repro.monitor.diff``)."""

import json
import math

import pytest

from repro.monitor.diff import Profile, diff_files, diff_profiles, load_profile


def _report_file(tmp_path, name, summary):
    path = tmp_path / name
    path.write_text(
        json.dumps({"version": 1, "summary": summary}), encoding="utf-8"
    )
    return path


def _profile(metrics, kind="report", path="x"):
    return Profile(kind=kind, path=path, metrics=dict(metrics))


class TestLoadProfile:
    def test_missing_file_raises_oserror(self, tmp_path):
        with pytest.raises(OSError):
            load_profile(tmp_path / "nope.json")

    def test_truncated_json_raises_decode_error(self, tmp_path):
        path = tmp_path / "cut.json"
        path.write_text('{"traceEvents": [', encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            load_profile(path)

    def test_wrong_shape_raises_valueerror(self, tmp_path):
        path = tmp_path / "list.json"
        path.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(ValueError, match="not a trace, report, or fleet"):
            load_profile(path)
        path2 = tmp_path / "other.json"
        path2.write_text('{"hello": "world"}', encoding="utf-8")
        with pytest.raises(ValueError, match="not a trace, report, or fleet"):
            load_profile(path2)

    def test_report_profile_keeps_numeric_summary_fields(self, tmp_path):
        path = _report_file(
            tmp_path, "r.json",
            {"jobs_completed": 4, "mean_response_s": 12.5, "note": "text"},
        )
        profile = load_profile(path)
        assert profile.kind == "report"
        assert profile.metrics == {
            "jobs_completed": 4.0, "mean_response_s": 12.5,
        }

    def test_trace_profile_from_golden_run(self, tmp_path):
        from repro.telemetry.exporters import write_chrome_trace
        from repro.testing.golden import run_monitored_scenario

        result = run_monitored_scenario(with_faults=False)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, result["tracer"])
        profile = load_profile(path)
        assert profile.kind == "trace"
        assert profile.metrics["jobs"] == 4.0
        assert profile.metrics["makespan_total_s"] > 0.0
        assert any(key.startswith("phase/") for key in profile.metrics)


class TestDiffProfiles:
    def test_identical_profiles_are_ok(self):
        a = _profile({"mean_response_s": 10.0})
        diff = diff_profiles(a, _profile({"mean_response_s": 10.0}))
        assert diff.ok
        assert diff.rows[0].delta == 0.0
        assert diff.rows[0].relative == 0.0

    def test_regression_above_threshold(self):
        diff = diff_profiles(
            _profile({"mean_response_s": 10.0}),
            _profile({"mean_response_s": 11.0}),
            threshold=0.05,
        )
        assert not diff.ok
        assert diff.regressions[0].metric == "mean_response_s"
        assert diff.regressions[0].relative == pytest.approx(0.1)

    def test_improvement_is_not_a_regression(self):
        diff = diff_profiles(
            _profile({"mean_response_s": 10.0}),
            _profile({"mean_response_s": 5.0}),
        )
        assert diff.ok

    def test_jobs_completed_is_higher_is_better(self):
        worse = diff_profiles(
            _profile({"jobs_completed": 4.0}),
            _profile({"jobs_completed": 3.0}),
        )
        assert not worse.ok
        better = diff_profiles(
            _profile({"jobs_completed": 3.0}),
            _profile({"jobs_completed": 4.0}),
        )
        assert better.ok

    def test_below_threshold_is_ok(self):
        diff = diff_profiles(
            _profile({"cost": 100.0}),
            _profile({"cost": 104.0}),
            threshold=0.05,
        )
        assert diff.ok

    def test_abs_floor_masks_float_noise(self):
        diff = diff_profiles(
            _profile({"cost": 1e-12}),
            _profile({"cost": 2e-12}),
            threshold=0.05,
        )
        # Relative change is 100% but absolute change is under the floor.
        assert diff.ok

    def test_metric_only_in_after_compares_against_zero(self):
        diff = diff_profiles(
            _profile({}), _profile({"wasted_usd": 0.5})
        )
        row = diff.rows[0]
        assert row.before == 0.0
        assert math.isinf(row.relative)
        assert row.regressed

    def test_mixed_kinds_rejected(self):
        with pytest.raises(ValueError, match="cannot diff"):
            diff_profiles(
                _profile({}, kind="trace"), _profile({}, kind="report")
            )

    def test_rows_sorted_and_to_dict_canonical(self):
        diff = diff_profiles(
            _profile({"b": 1.0, "a": 2.0}),
            _profile({"a": 2.0, "c": 3.0}),
        )
        assert [row.metric for row in diff.rows] == ["a", "b", "c"]
        doc = diff.to_dict()
        assert doc["version"] == 1
        assert doc["ok"] is False
        assert json.dumps(doc, sort_keys=True) == json.dumps(
            diff.to_dict(), sort_keys=True
        )


class TestDiffFiles:
    def test_end_to_end_report_diff(self, tmp_path):
        before = _report_file(
            tmp_path, "before.json",
            {"jobs_completed": 4, "mean_response_s": 10.0},
        )
        after = _report_file(
            tmp_path, "after.json",
            {"jobs_completed": 4, "mean_response_s": 13.0},
        )
        diff = diff_files(before, after, threshold=0.1)
        assert diff.kind == "report"
        assert [row.metric for row in diff.regressions] == ["mean_response_s"]
