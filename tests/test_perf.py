"""Tests for the performance observatory (`repro.perf`).

Three layers under test: the always-on :class:`RuntimeMeter` and its
metering sites (kernel lanes, controller plan path, sweep cache), the
unified benchmark harness (registry, canonical document, history
ledger), and the regression sentinel (direction-aware metric checks,
trend forecasts, and the thin legacy wrappers in ``tools/``).
"""

import json
import sys
from pathlib import Path

import pytest

from repro.ledger import LedgerEntry, make_entry
from repro.perf.bench import (
    BENCH_SCHEMA,
    HISTORY_SCHEMA,
    REGISTRY,
    BenchSpec,
    MetricSpec,
    append_history,
    build_document,
    flat_payload,
    history_metrics,
    history_series,
    read_history,
    record_summary,
    register_bench,
    resolve_history_path,
    scrub_volatile,
)
from repro.perf.check import (
    evaluate_bench,
    evaluate_metric,
    trend_outcomes,
)
from repro.perf.check import _load_fresh
from repro.perf.meter import NULL_METER, NullRuntimeMeter, RuntimeMeter
from repro.sim import Simulator
from repro.sweep import SweepRunner, SweepSpec
from repro.sweep.spec import canonical_json
from repro.telemetry.registry import LabeledMetricsRegistry

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOLS_DIR = REPO_ROOT / "tools"


class TestRuntimeMeter:
    def test_snapshot_is_integer_counters_plus_derived_total(self):
        meter = RuntimeMeter()
        meter.fast_lane_hits = 3
        meter.heap_hits = 2
        meter.plans_computed = 1
        snap = meter.snapshot()
        assert snap["fast_lane_hits"] == 3
        assert snap["heap_hits"] == 2
        assert snap["events_dispatched"] == 5
        assert all(isinstance(v, int) for v in snap.values())
        # Wall clocks never enter the snapshot: it must stay a pure
        # function of the simulated work.
        meter.plan_wall_s = 1.5
        assert "plan_wall_s" not in meter.snapshot()

    def test_timings_are_rounded_floats(self):
        meter = RuntimeMeter()
        meter.plan_wall_s = 0.123456789
        timings = meter.timings()
        assert timings["plan_wall_s"] == 0.123457
        assert set(timings) == {
            "plan_wall_s",
            "sweep_wall_s",
            "shard_wall_s",
            "merge_wall_s",
            "kernel_flush_wall_s",
        }

    def test_run_books_batched_events_and_flush_wall(self):
        # run() dispatches the fast lane in batches: every lane dispatch
        # counts in both fast_lane_hits and batched_events, and the drain
        # wall-clock lands in the kernel_flush timing slot.
        sim = Simulator()
        done = []
        for index in range(4):
            event = sim.event()
            event.callbacks.append(lambda e, i=index: done.append(i))
            event.succeed(None)
        sim.run()
        assert done == [0, 1, 2, 3]
        assert sim.meter.batched_events == 4
        assert sim.meter.fast_lane_hits == 4
        assert sim.meter.snapshot()["batched_events"] == 4
        assert sim.meter.timings()["kernel_flush_wall_s"] >= 0.0

    def test_step_dispatches_are_not_batched(self):
        sim = Simulator()
        sim.event().succeed(None)
        sim.step()
        assert sim.meter.fast_lane_hits == 1
        assert sim.meter.batched_events == 0

    def test_absorb_folds_counters_and_timings(self):
        a, b = RuntimeMeter(), RuntimeMeter()
        a.fast_lane_hits = 2
        a.plan_wall_s = 0.5
        b.fast_lane_hits = 3
        b.plan_wall_s = 0.25
        a.absorb(b)
        assert a.fast_lane_hits == 5
        assert a.plan_wall_s == 0.75

    def test_absorb_snapshot_ignores_unknown_keys(self):
        meter = RuntimeMeter()
        meter.absorb_snapshot(
            {"fast_lane_hits": 4, "events_dispatched": 4, "bogus": 9}
        )
        assert meter.fast_lane_hits == 4
        assert meter.events_dispatched == 4

    def test_publish_exports_counters_and_stage_gauges(self):
        meter = RuntimeMeter()
        meter.heap_hits = 7
        meter.merge_wall_s = 0.5
        registry = LabeledMetricsRegistry()
        meter.publish(registry)
        text = registry.to_prometheus()
        assert "repro_meter_heap_hits_total 7" in text
        assert "repro_meter_events_dispatched_total 7" in text
        assert 'repro_meter_wall_seconds{stage="merge"} 0.5' in text

    def test_publish_without_timings_skips_wall_gauges(self):
        meter = RuntimeMeter()
        meter.absorb_snapshot({"fast_lane_hits": 1})
        registry = LabeledMetricsRegistry()
        meter.publish(registry, include_timings=False)
        text = registry.to_prometheus()
        assert "repro_meter_fast_lane_hits_total 1" in text
        assert "repro_meter_wall_seconds" not in text

    def test_null_meter_is_disabled_but_still_counts(self):
        assert RuntimeMeter.enabled is True
        assert NULL_METER.enabled is False
        null = NullRuntimeMeter()
        null.fast_lane_hits += 1
        assert null.events_dispatched == 1


class TestMeterSites:
    def test_kernel_lanes_account_for_every_event(self):
        sim = Simulator()

        def proc():
            for _ in range(10):
                yield sim.timeout(1.0)

        sim.run(until=sim.spawn(proc()))
        meter = sim.meter
        assert meter.events_dispatched == sim.events_processed
        assert meter.fast_lane_hits + meter.heap_hits == sim.events_processed
        assert sim.events_processed > 0

    def test_controller_meters_each_plan(self):
        from repro.apps import photo_backup_app
        from repro.core.controller import Environment, OffloadController

        env = Environment.build(seed=3, connectivity="4g")
        controller = OffloadController(env, photo_backup_app())
        controller.profile_offline()
        before = env.sim.meter.plans_computed
        controller.plan(input_mb=2.0)
        controller.plan(input_mb=4.0)
        assert env.sim.meter.plans_computed - before == 2

    def test_sweep_counts_cache_hits_and_misses(self, tmp_path):
        spec = SweepSpec(
            scenario="repro.sweep.scenarios:kernel_smoke",
            points=[{"n": 5}, {"n": 6}],
        )
        cold = SweepRunner(spec, cache_dir=tmp_path)
        cold.run()
        assert cold.meter.sweep_configs == 2
        assert cold.meter.sweep_cache_misses == 2
        assert cold.meter.sweep_cache_hits == 0
        warm = SweepRunner(spec, cache_dir=tmp_path)
        warm.run()
        assert warm.meter.sweep_configs == 2
        assert warm.meter.sweep_cache_hits == 2
        assert warm.meter.sweep_cache_misses == 0


@pytest.fixture
def scratch_registry():
    """Temporarily register a synthetic bench; restore the registry."""
    saved = dict(REGISTRY)
    try:
        yield REGISTRY
    finally:
        REGISTRY.clear()
        REGISTRY.update(saved)


class TestBenchHarness:
    def test_register_and_record_round_trip(self, scratch_registry):
        @register_bench(
            "XX",
            metrics=(MetricSpec("speed", kind="ratio"),),
            deterministic=("mode", "digest"),
            primary="speed",
        )
        def run_xx():
            return None

        spec = REGISTRY["XX"]
        assert spec.runner is run_xx
        assert spec.primary == "speed"
        assert spec.deterministic == ("mode", "digest")
        record_summary("XX", {"speed": 1.0})
        from repro.perf.bench import LAST_SUMMARIES

        assert LAST_SUMMARIES["XX"] == {"speed": 1.0}

    def test_build_document_splits_on_deterministic_keys(
        self, scratch_registry
    ):
        register_bench(
            "XX", metrics=(), deterministic=("mode", "digest")
        )(lambda: None)
        document = build_document(
            {"XX": {"mode": "short", "digest": "abc", "wall_s": 0.5}},
            mode="short",
            fingerprint={"host": "h"},
        )
        entry = document["benches"]["XX"]
        assert entry["checks"] == {"mode": "short", "digest": "abc"}
        assert entry["timings"] == {"wall_s": 0.5}
        assert document["schema"] == BENCH_SCHEMA
        assert document["fingerprint"] == {"host": "h"}

    def test_scrub_volatile_is_byte_stable(self, scratch_registry):
        register_bench("XX", deterministic=("digest",))(lambda: None)
        results = {"XX": {"digest": "abc", "wall_s": 0.5}}
        one = build_document(results, "short", fingerprint={"host": "a"})
        two = build_document(results, "short", fingerprint={"host": "b"})
        assert canonical_json(scrub_volatile(one)) == canonical_json(
            scrub_volatile(two)
        )
        assert "fingerprint" not in scrub_volatile(one)
        assert "timings" not in scrub_volatile(one)["benches"]["XX"]

    def test_flat_payload_accepts_both_shapes(self):
        entry = {"checks": {"a": 1}, "timings": {"b": 2.0}}
        assert flat_payload(entry) == {"a": 1, "b": 2.0}
        assert flat_payload({"a": 1}) == {"a": 1}

    def test_history_metrics_cover_registered_metrics_only(
        self, scratch_registry
    ):
        register_bench(
            "XX",
            metrics=(
                MetricSpec("speed", kind="ratio"),
                MetricSpec("ok", kind="flag"),
            ),
        )(lambda: None)
        document = build_document(
            {"XX": {"speed": 2.5, "ok": True, "extra": 9.0},
             "YY": {"speed": 1.0}},
            mode="short",
            fingerprint={},
        )
        metrics = history_metrics(document)
        assert metrics == {"XX.speed": 2.5, "XX.ok": 1.0}

    def test_resolve_history_path_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_HISTORY", "env.jsonl")
        assert resolve_history_path("mine.jsonl").name == "mine.jsonl"
        assert resolve_history_path().name == "env.jsonl"
        assert resolve_history_path("") is None
        monkeypatch.setenv("REPRO_BENCH_HISTORY", "")
        assert resolve_history_path() is None
        monkeypatch.delenv("REPRO_BENCH_HISTORY")
        assert resolve_history_path().name == ".repro_bench_history.jsonl"

    def test_history_append_read_series(self, tmp_path, scratch_registry):
        register_bench(
            "XX", metrics=(MetricSpec("speed", kind="ratio"),)
        )(lambda: None)
        path = tmp_path / "history.jsonl"
        for mode, speed in (("short", 1.0), ("full", 9.0), ("short", 2.0)):
            document = build_document(
                {"XX": {"speed": speed}}, mode, fingerprint={}
            )
            append_history(path, document)
        path.write_text(path.read_text() + "not json\n")
        entries = read_history(path)
        assert len(entries) == 3
        assert all(e["schema"] == HISTORY_SCHEMA for e in entries)
        assert history_series(entries, "XX.speed") == [1.0, 9.0, 2.0]
        assert history_series(entries, "XX.speed", mode="short") == [1.0, 2.0]
        assert history_series(entries, "XX.nope") == []


class TestEvaluateMetric:
    def test_flag(self):
        spec = MetricSpec("ok", kind="flag")
        assert evaluate_metric("B", spec, {"ok": True}).status == "ok"
        assert evaluate_metric("B", spec, {"ok": False}).failed

    def test_min_floor_and_gate(self):
        spec = MetricSpec(
            "speedup", kind="min", threshold=3.0,
            gate={"cores_min": 4, "mode": "full"},
        )
        armed = {"speedup": 2.0, "cores": 8, "mode": "full"}
        assert evaluate_metric("B", spec, armed).failed
        passing = {"speedup": 3.5, "cores": 8, "mode": "full"}
        assert evaluate_metric("B", spec, passing).status == "ok"
        few_cores = {"speedup": 0.1, "cores": 1, "mode": "full"}
        assert evaluate_metric("B", spec, few_cores).status == "skip"
        short = {"speedup": 0.1, "cores": 8, "mode": "short"}
        assert evaluate_metric("B", spec, short).status == "skip"

    def test_payload_equality_gate(self):
        """Any non-reserved gate key arms only on payload equality —
        the O3 rule: the compiled floor skips on pure-only hosts."""
        spec = MetricSpec(
            "events_per_s_compiled", kind="min", threshold=5e6,
            gate={"compiled": True},
        )
        armed = {"events_per_s_compiled": 1e6, "compiled": True}
        assert evaluate_metric("B", spec, armed).failed
        passing = {"events_per_s_compiled": 9e6, "compiled": True}
        assert evaluate_metric("B", spec, passing).status == "ok"
        pure_host = {"events_per_s_compiled": 0.0, "compiled": False}
        outcome = evaluate_metric("B", spec, pure_host)
        assert outcome.status == "skip"
        assert "compiled" in outcome.detail
        missing = {"events_per_s_compiled": 0.0}
        assert evaluate_metric("B", spec, missing).status == "skip"

    def test_max_ceiling(self):
        spec = MetricSpec("overhead", kind="max", threshold=2.0)
        assert evaluate_metric("B", spec, {"overhead": 1.5}).status == "ok"
        assert evaluate_metric("B", spec, {"overhead": 2.5}).failed

    def test_ratio_directions(self):
        higher = MetricSpec("speed", kind="ratio", threshold=0.2)
        committed = {"speed": 100.0}
        assert evaluate_metric(
            "B", higher, {"speed": 90.0}, committed
        ).status == "ok"
        assert evaluate_metric("B", higher, {"speed": 70.0}, committed).failed
        lower = MetricSpec(
            "cost", kind="ratio", direction="lower", threshold=0.2
        )
        assert evaluate_metric(
            "B", lower, {"cost": 110.0}, {"cost": 100.0}
        ).status == "ok"
        assert evaluate_metric(
            "B", lower, {"cost": 130.0}, {"cost": 100.0}
        ).failed

    def test_ratio_without_threshold_is_report_only(self):
        spec = MetricSpec("speed", kind="ratio", threshold=None)
        outcome = evaluate_metric("B", spec, {"speed": 1.0}, {"speed": 9.0})
        assert outcome.status == "info"

    def test_ratio_without_baseline_skips(self):
        spec = MetricSpec("speed", kind="ratio", threshold=0.2)
        assert evaluate_metric("B", spec, {"speed": 1.0}).status == "skip"

    def test_equal_and_same_mode_skip(self):
        spec = MetricSpec("digest", kind="equal", same_mode=True)
        fresh = {"digest": "abc", "mode": "short"}
        match = {"digest": "abc", "mode": "short"}
        assert evaluate_metric("B", spec, fresh, match).status == "ok"
        differ = {"digest": "xyz", "mode": "short"}
        assert evaluate_metric("B", spec, fresh, differ).failed
        full = {"digest": "xyz", "mode": "full"}
        assert evaluate_metric("B", spec, fresh, full).status == "skip"

    def test_threshold_override_hits_primary_only(self):
        spec = BenchSpec(
            name="B",
            runner=lambda: None,
            metrics=(
                MetricSpec("speed", kind="ratio", threshold=0.2),
                MetricSpec("other", kind="ratio", threshold=0.2),
            ),
            primary="speed",
        )
        fresh = {"speed": 60.0, "other": 60.0}
        committed = {"speed": 100.0, "other": 100.0}
        outcomes = {
            o.metric: o
            for o in evaluate_bench(spec, fresh, committed, threshold=0.5)
        }
        # 60% of committed: inside the overridden 50% floor for the
        # primary, outside the registered 20% floor for the other.
        assert outcomes["speed"].status == "ok"
        assert outcomes["other"].failed


class TestTrendSentinel:
    @staticmethod
    def _history(values, mode="short"):
        return [
            {"schema": HISTORY_SCHEMA, "mode": mode,
             "metrics": {"B.speed": value}}
            for value in values
        ]

    @staticmethod
    def _spec():
        return BenchSpec(
            name="B",
            runner=lambda: None,
            metrics=(MetricSpec("speed", kind="ratio", threshold=0.2),),
        )

    def test_declining_series_warns_then_fails(self):
        history = self._history([100.0, 90.0, 80.0, 70.0, 60.0, 50.0])
        warn, = trend_outcomes(self._spec(), "short", history)
        assert warn.status == "warn"
        assert warn.metric == "speed~trend"
        fail, = trend_outcomes(self._spec(), "short", history, fail=True)
        assert fail.failed

    def test_flat_series_is_ok(self):
        history = self._history([100.0, 101.0, 99.0, 100.0, 100.0])
        outcome, = trend_outcomes(self._spec(), "short", history)
        assert outcome.status == "ok"

    def test_short_or_wrong_mode_series_is_silent(self):
        assert trend_outcomes(
            self._spec(), "short", self._history([100.0, 50.0])
        ) == []
        history = self._history([100.0, 80.0, 60.0, 40.0], mode="full")
        assert trend_outcomes(self._spec(), "short", history) == []


class TestFreshLoaders:
    def test_load_fresh_document_defaults_mode(self, tmp_path):
        document = {
            "schema": BENCH_SCHEMA,
            "mode": "short",
            "fingerprint": {},
            "benches": {
                "O2": {"checks": {"ops": 5}, "timings": {"wall_s": 0.1}}
            },
        }
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(document))
        payloads = _load_fresh(path)
        assert payloads["O2"] == {"ops": 5, "wall_s": 0.1, "mode": "short"}

    def test_load_fresh_legacy_single_bench(self, tmp_path):
        path = tmp_path / "BENCH_O2.json"
        path.write_text(json.dumps({"bench": "O2", "events_per_s_pure": 5}))
        payloads = _load_fresh(path)
        assert payloads == {"O2": {"bench": "O2", "events_per_s_pure": 5}}

    def test_load_fresh_rejects_unknown_shape(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text(json.dumps({"what": "ever"}))
        with pytest.raises(SystemExit):
            _load_fresh(path)


def _import_tool(name):
    if str(TOOLS_DIR) not in sys.path:
        sys.path.insert(0, str(TOOLS_DIR))
    import importlib

    return importlib.import_module(name)


def _legacy_o2(path, events_per_s):
    path.write_text(json.dumps({
        "bench": "O2",
        "mode": "short",
        "events_per_s_pure": events_per_s,
    }))
    return path


class TestLegacyWrappers:
    """The thin tools/ wrappers must keep their historical pass/fail."""

    def test_check_bench_o2_pass_and_fail(self, tmp_path):
        wrapper = _import_tool("check_bench_o2")
        committed = _legacy_o2(tmp_path / "committed.json", 1000.0)
        ok = _legacy_o2(tmp_path / "ok.json", 950.0)
        assert wrapper.main([str(ok), "--committed", str(committed)]) == 0
        bad = _legacy_o2(tmp_path / "bad.json", 700.0)
        assert wrapper.main([str(bad), "--committed", str(committed)]) == 1

    def test_check_bench_f10_pass_and_fail(self, tmp_path):
        wrapper = _import_tool("check_bench_f10")
        ok = tmp_path / "ok.json"
        ok.write_text(json.dumps({
            "bench": "F10", "mode": "short", "byte_identical": True,
            "speedup_4w": 1.0, "cores": 1,
        }))
        assert wrapper.main([str(ok)]) == 0
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({
            "bench": "F10", "mode": "short", "byte_identical": False,
            "speedup_4w": 1.0, "cores": 1,
        }))
        assert wrapper.main([str(bad)]) == 1

    def test_unified_checker_shim_matches(self, tmp_path):
        from repro.perf.check import main as check_main

        committed = _legacy_o2(tmp_path / "committed.json", 1000.0)
        bad = _legacy_o2(tmp_path / "bad.json", 700.0)
        assert check_main([
            str(bad), "--bench", "O2",
            "--committed", str(committed), "--no-trend",
        ]) == 1
        shim = _import_tool("check_bench")
        assert shim.main is check_main


class TestBenchCLI:
    def test_bench_history_lists_entries(self, tmp_path, capsys,
                                         scratch_registry):
        from repro.cli import main

        register_bench(
            "XX", metrics=(MetricSpec("speed", kind="ratio"),)
        )(lambda: None)
        path = tmp_path / "history.jsonl"
        for speed in (1.0, 2.0):
            append_history(path, build_document(
                {"XX": {"speed": speed}}, "short", fingerprint={}
            ))
        assert main(["bench", "history", "--history", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Bench history" in out
        assert "XX.speed=1.0" in out

    def test_bench_history_metric_series(self, tmp_path, capsys,
                                         scratch_registry):
        from repro.cli import main

        register_bench(
            "XX", metrics=(MetricSpec("speed", kind="ratio"),)
        )(lambda: None)
        path = tmp_path / "history.jsonl"
        for speed in (1.0, 2.0):
            append_history(path, build_document(
                {"XX": {"speed": speed}}, "short", fingerprint={}
            ))
        assert main([
            "bench", "history", "--history", str(path),
            "--metric", "XX.speed",
        ]) == 0
        assert capsys.readouterr().out.splitlines() == ["1.0", "2.0"]

    def test_bench_compare_delegates_to_checker(self, tmp_path, capsys):
        from repro.cli import main

        committed = _legacy_o2(tmp_path / "committed.json", 1000.0)
        ok = _legacy_o2(tmp_path / "ok.json", 950.0)
        assert main([
            "bench", "compare", str(ok), "--bench", "O2",
            "--committed", str(committed), "--no-trend",
        ]) == 0
        assert "O2.events_per_s_pure" in capsys.readouterr().out

    def test_bench_run_rejects_unknown_bench(self):
        from repro.cli import main

        with pytest.raises(SystemExit, match="unknown benchmark"):
            main(["bench", "run", "--short", "--bench", "NOPE"])


class TestLedgerMeter:
    def test_meter_rides_the_entry(self):
        entry = make_entry(
            "run", {"seed": 1}, wall_s=0.1,
            meter={"counters": {"fast_lane_hits": 3},
                   "timings": {"plan_wall_s": 0.01}},
        )
        data = entry.to_dict()
        assert data["meter"]["counters"]["fast_lane_hits"] == 3
        back = LedgerEntry.from_dict(data)
        assert back.meter == entry.meter

    def test_legacy_records_read_back_with_empty_meter(self):
        entry = make_entry("run", {"seed": 1}, wall_s=0.1)
        data = entry.to_dict()
        data.pop("meter")
        assert LedgerEntry.from_dict(data).meter == {}
