"""Tests for the serverless billing model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serverless import BillingModel, CostBreakdown


class TestCostBreakdown:
    def test_total(self):
        cost = CostBreakdown(request_cost=1.0, compute_cost=2.0)
        assert cost.total == 3.0

    def test_addition(self):
        a = CostBreakdown(1.0, 2.0)
        b = CostBreakdown(0.5, 0.25)
        combined = a + b
        assert combined.request_cost == 1.5
        assert combined.compute_cost == 2.25

    def test_zero_identity(self):
        a = CostBreakdown(1.0, 2.0)
        assert (a + CostBreakdown.zero()).total == a.total

    def test_sum_aggregates_breakdowns(self):
        """Regression: ``sum(costs)`` starts from int 0, which used to
        raise ``TypeError`` because ``__radd__`` was missing."""
        costs = [
            CostBreakdown(1.0, 2.0),
            CostBreakdown(0.5, 0.25),
            CostBreakdown(0.25, 0.125),
        ]
        total = sum(costs)
        assert isinstance(total, CostBreakdown)
        assert total.request_cost == pytest.approx(1.75)
        assert total.compute_cost == pytest.approx(2.375)

    def test_sum_with_explicit_zero_start(self):
        assert sum([], CostBreakdown.zero()) == CostBreakdown.zero()
        assert sum(
            [CostBreakdown(1.0, 1.0)], CostBreakdown.zero()
        ).total == pytest.approx(2.0)

    def test_add_foreign_type_is_typeerror(self):
        with pytest.raises(TypeError):
            CostBreakdown(1.0, 2.0) + 1.5  # noqa: B018 - operator under test
        with pytest.raises(TypeError):
            CostBreakdown(1.0, 2.0) + "usd"  # noqa: B018

    def test_radd_accepts_only_zero(self):
        cost = CostBreakdown(1.0, 2.0)
        assert 0 + cost == cost
        with pytest.raises(TypeError):
            1 + cost  # noqa: B018
        with pytest.raises(TypeError):
            2.5 + cost  # noqa: B018


class TestBillingModel:
    def test_defaults_are_lambda_2022(self):
        billing = BillingModel()
        assert billing.price_per_gb_second == pytest.approx(1.6667e-5)
        assert billing.price_per_request == pytest.approx(2.0e-7)

    def test_billed_duration_rounds_up(self):
        billing = BillingModel(granularity_s=0.001)
        assert billing.billed_duration(0.0011) == pytest.approx(0.002)
        assert billing.billed_duration(0.002) == pytest.approx(0.002)

    def test_minimum_billed(self):
        billing = BillingModel(minimum_billed_s=0.01)
        assert billing.billed_duration(0.0001) == pytest.approx(0.01)

    def test_zero_duration_bills_minimum(self):
        billing = BillingModel()
        assert billing.billed_duration(0.0) == pytest.approx(0.001)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            BillingModel().billed_duration(-0.1)

    def test_invocation_cost_components(self):
        billing = BillingModel(
            price_per_gb_second=1e-5, price_per_request=1e-7, granularity_s=0.001
        )
        cost = billing.invocation_cost(duration_s=2.0, memory_mb=2048)
        assert cost.request_cost == pytest.approx(1e-7)
        assert cost.compute_cost == pytest.approx(2.0 * 2.0 * 1e-5)

    def test_memory_validation(self):
        with pytest.raises(ValueError):
            BillingModel().invocation_cost(1.0, 0.0)

    def test_monthly_cost_scales_linearly(self):
        billing = BillingModel()
        one = billing.monthly_cost(1, 0.5, 1024)
        thousand = billing.monthly_cost(1000, 0.5, 1024)
        assert thousand == pytest.approx(1000 * one)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            BillingModel(price_per_gb_second=-1.0)
        with pytest.raises(ValueError):
            BillingModel(granularity_s=0.0)
        with pytest.raises(ValueError):
            BillingModel(minimum_billed_s=-1.0)

    @given(
        duration=st.floats(min_value=0.0, max_value=900.0),
        memory=st.sampled_from([128, 512, 1024, 1769, 4096, 10240]),
    )
    @settings(max_examples=100, deadline=None)
    def test_billed_never_below_actual(self, duration, memory):
        billing = BillingModel()
        assert billing.billed_duration(duration) >= min(duration, 900.0) - 1e-9

    @given(
        d1=st.floats(min_value=0.0, max_value=100.0),
        d2=st.floats(min_value=0.0, max_value=100.0),
        memory=st.sampled_from([128, 1024, 10240]),
    )
    @settings(max_examples=100, deadline=None)
    def test_cost_monotone_in_duration(self, d1, d2, memory):
        billing = BillingModel()
        lo, hi = sorted((d1, d2))
        assert (
            billing.invocation_cost(lo, memory).total
            <= billing.invocation_cost(hi, memory).total + 1e-15
        )

    @given(
        duration=st.floats(min_value=0.001, max_value=100.0),
        m1=st.sampled_from([128, 512, 1769]),
        m2=st.sampled_from([2048, 4096, 10240]),
    )
    @settings(max_examples=100, deadline=None)
    def test_cost_monotone_in_memory_at_fixed_duration(self, duration, m1, m2):
        billing = BillingModel()
        assert (
            billing.invocation_cost(duration, m1).total
            <= billing.invocation_cost(duration, m2).total
        )
