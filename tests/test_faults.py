"""Tests for the fault-injection subsystem and graceful degradation.

Covers the three layers end to end: schedules (windows, normalization,
chaos generation), realisation (faulted bandwidth, zone outages,
reclamation, stragglers, brownouts), and the degradation responses
(outage-aware backoff, hedging, fallback-to-local in the controller).
"""

import math

import pytest

from repro.apps import Job, photo_backup_app
from repro.core.controller import Environment, OffloadController
from repro.faults import (
    DegradationPolicy,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultWindow,
    FaultedBandwidth,
    PlatformFaultModel,
    inject_faults,
)
from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    PlatformConfig,
    PlatformOutageError,
    RetryPolicy,
    SandboxReclaimedError,
    ServerlessPlatform,
    invoke_hedged,
    invoke_with_retries,
)
from repro.sim import Simulator
from repro.sim.rng import RngStream
from repro.traces import ConstantBandwidth, StepBandwidth


@pytest.fixture
def sim():
    return Simulator()


def make_platform(sim, **config):
    defaults = dict(
        keep_alive_s=60.0, cold_start_base_s=0.5, cold_start_per_package_mb_s=0.0
    )
    defaults.update(config)
    platform = ServerlessPlatform(sim, PlatformConfig(**defaults))
    platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
    return platform


def install_faults(platform, windows, rng=None):
    platform.faults = PlatformFaultModel(
        FaultSchedule(windows), rng=rng, zone=platform.name
    )
    return platform.faults


class TestFaultWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultWindow(FaultKind.LINK_OUTAGE, 5.0, 5.0)  # empty
        with pytest.raises(ValueError):
            FaultWindow(FaultKind.LINK_OUTAGE, 5.0, 4.0)  # inverted
        with pytest.raises(ValueError):
            FaultWindow(FaultKind.LINK_DEGRADED, 0, 1, magnitude=1.0)
        with pytest.raises(ValueError):
            FaultWindow(FaultKind.SANDBOX_RECLAIM, 0, 1, magnitude=0.0)
        with pytest.raises(ValueError):
            FaultWindow(FaultKind.STRAGGLER, 0, 1, magnitude=0.5)
        with pytest.raises(ValueError):
            FaultWindow(FaultKind.BATTERY_BROWNOUT, 0, 1, magnitude=1.5)

    def test_string_kind_is_coerced(self):
        window = FaultWindow("link_outage", 0.0, 1.0)
        assert window.kind is FaultKind.LINK_OUTAGE

    def test_half_open_semantics(self):
        window = FaultWindow(FaultKind.ZONE_OUTAGE, 10.0, 20.0)
        assert window.contains(10.0)
        assert window.contains(19.999)
        assert not window.contains(20.0)
        assert window.overlaps(19.0, 25.0)
        assert not window.overlaps(20.0, 25.0)

    def test_applies_to(self):
        scoped = FaultWindow(FaultKind.LINK_OUTAGE, 0, 1, target="uplink")
        assert scoped.applies_to("uplink")
        assert scoped.applies_to(None)  # wildcard query sees everything
        assert not scoped.applies_to("downlink")
        unscoped = FaultWindow(FaultKind.LINK_OUTAGE, 0, 1)
        assert unscoped.applies_to("uplink")


class TestFaultSchedule:
    def test_overlapping_windows_merge_with_max_magnitude(self):
        schedule = FaultSchedule(
            [
                FaultWindow(FaultKind.STRAGGLER, 0.0, 10.0, magnitude=2.0),
                FaultWindow(FaultKind.STRAGGLER, 5.0, 15.0, magnitude=3.0),
                FaultWindow(FaultKind.STRAGGLER, 15.0, 20.0, magnitude=1.5),
            ]
        )
        assert len(schedule) == 1  # touching windows merge too
        (window,) = schedule.windows
        assert (window.start, window.end) == (0.0, 20.0)
        assert window.magnitude == 3.0

    def test_distinct_groups_do_not_merge(self):
        schedule = FaultSchedule(
            [
                FaultWindow(FaultKind.LINK_OUTAGE, 0.0, 10.0, target="uplink"),
                FaultWindow(FaultKind.LINK_OUTAGE, 5.0, 15.0, target="downlink"),
                FaultWindow(FaultKind.ZONE_OUTAGE, 2.0, 8.0),
            ]
        )
        assert len(schedule) == 3

    def test_clear_time_chains_back_to_back_windows(self):
        schedule = FaultSchedule(
            [
                FaultWindow(FaultKind.ZONE_OUTAGE, 0.0, 10.0, target="a"),
                FaultWindow(FaultKind.ZONE_OUTAGE, 10.0, 20.0),  # global
            ]
        )
        assert schedule.clear_time(FaultKind.ZONE_OUTAGE, 5.0, "a") == 20.0
        assert schedule.clear_time(FaultKind.ZONE_OUTAGE, 25.0, "a") == 25.0

    def test_next_boundary_filters_by_kind_and_target(self):
        schedule = FaultSchedule(
            [
                FaultWindow(FaultKind.LINK_OUTAGE, 10.0, 20.0, target="uplink"),
                FaultWindow(FaultKind.ZONE_OUTAGE, 2.0, 4.0),
            ]
        )
        assert schedule.next_boundary_after(0.0) == 2.0
        assert (
            schedule.next_boundary_after(
                0.0, kinds=(FaultKind.LINK_OUTAGE,), target="uplink"
            )
            == 10.0
        )
        assert schedule.next_boundary_after(
            0.0, kinds=(FaultKind.LINK_OUTAGE,), target="downlink"
        ) == math.inf

    def test_magnitude_at_and_is_active(self):
        schedule = FaultSchedule(
            [FaultWindow(FaultKind.LINK_DEGRADED, 5.0, 10.0, magnitude=0.25)]
        )
        assert schedule.magnitude_at(FaultKind.LINK_DEGRADED, 7.0) == 0.25
        assert schedule.magnitude_at(FaultKind.LINK_DEGRADED, 12.0) == 1.0
        assert schedule.is_active(FaultKind.LINK_DEGRADED, 5.0)
        assert not schedule.is_active(FaultKind.LINK_DEGRADED, 10.0)

    def test_merged_with_renormalizes(self):
        a = FaultSchedule([FaultWindow(FaultKind.ZONE_OUTAGE, 0.0, 10.0)])
        b = FaultSchedule([FaultWindow(FaultKind.ZONE_OUTAGE, 8.0, 20.0)])
        merged = a.merged_with(b)
        assert len(merged) == 1
        assert merged.windows[0].end == 20.0

    def test_chaos_is_reproducible_and_scales_with_intensity(self):
        first = FaultSchedule.chaos(0.8, 3600.0, RngStream(11))
        second = FaultSchedule.chaos(0.8, 3600.0, RngStream(11))
        assert first.windows == second.windows
        assert len(FaultSchedule.chaos(0.0, 3600.0, RngStream(11))) == 0
        assert all(
            0.0 <= w.start < w.end <= 3600.0 + 1.0 for w in first.windows
        )

    def test_chaos_rejects_bad_arguments(self):
        with pytest.raises(ValueError):
            FaultSchedule.chaos(1.5, 100.0, RngStream(1))
        with pytest.raises(ValueError):
            FaultSchedule.chaos(0.5, 0.0, RngStream(1))


class TestFaultedBandwidth:
    def test_outage_zeroes_and_degradation_scales(self):
        schedule = FaultSchedule(
            [
                FaultWindow(FaultKind.LINK_OUTAGE, 10.0, 20.0, target="uplink"),
                FaultWindow(
                    FaultKind.LINK_DEGRADED, 30.0, 40.0, target="uplink", magnitude=0.5
                ),
            ]
        )
        trace = FaultedBandwidth(ConstantBandwidth(8e6), schedule, target="uplink")
        assert trace.rate_at(5.0) == 8e6
        assert trace.rate_at(15.0) == 0.0
        assert trace.rate_at(35.0) == 4e6
        assert trace.rate_at(45.0) == 8e6

    def test_next_change_merges_base_and_fault_boundaries(self):
        schedule = FaultSchedule(
            [FaultWindow(FaultKind.LINK_OUTAGE, 10.0, 20.0, target="uplink")]
        )
        base = StepBandwidth([(0.0, 8e6), (15.0, 2e6)])
        trace = FaultedBandwidth(base, schedule, target="uplink")
        assert trace.next_change_after(0.0) == 10.0  # fault starts first
        assert trace.next_change_after(10.0) == 15.0  # then the base step
        assert trace.next_change_after(15.0) == 20.0  # then the fault ends

    def test_transfer_time_integrates_across_an_outage(self):
        # Rate 8e6/s; outage [1, 3): 2 units-seconds of work means 1s of
        # active transfer before the outage, a 2s stall, 1s after — 4s.
        schedule = FaultSchedule([FaultWindow(FaultKind.LINK_OUTAGE, 1.0, 3.0)])
        trace = FaultedBandwidth(ConstantBandwidth(8e6), schedule)
        assert trace.transfer_time(0.0, 16e6) == pytest.approx(4.0)

    def test_scoped_windows_ignore_other_targets(self):
        schedule = FaultSchedule(
            [FaultWindow(FaultKind.LINK_OUTAGE, 0.0, 10.0, target="downlink")]
        )
        trace = FaultedBandwidth(ConstantBandwidth(1e6), schedule, target="uplink")
        assert trace.rate_at(5.0) == 1e6


class TestPlatformFaults:
    def test_zone_outage_rejects_submissions(self, sim):
        platform = make_platform(sim)
        install_faults(platform, [FaultWindow(FaultKind.ZONE_OUTAGE, 0.0, 50.0)])
        errors = []

        def driver(sim):
            try:
                yield platform.invoke(InvocationRequest("f", 1.0))
            except PlatformOutageError as error:
                errors.append(error)

        sim.run(until=sim.spawn(driver(sim)))
        assert len(errors) == 1
        assert errors[0].billed_usd == 0.0
        snap = platform.metrics.snapshot()
        assert snap["faas.outage_rejections"] == 1.0
        assert platform.outage_clear_time(at=10.0) == 50.0
        assert platform.outage_clear_time(at=60.0) is None

    def test_straggler_stretches_execution(self, sim):
        platform = make_platform(sim)
        install_faults(
            platform,
            [FaultWindow(FaultKind.STRAGGLER, 0.0, 100.0, magnitude=4.0)],
        )
        records = []

        def driver(sim):
            records.append((yield platform.invoke(InvocationRequest("f", 2.4))))

        sim.run(until=sim.spawn(driver(sim)))
        (record,) = records
        base = platform.spec("f").duration_for(2.4)
        assert record.finished_at - record.started_at == pytest.approx(4.0 * base)
        assert platform.metrics.snapshot()["faas.straggler_slowdowns"] == 1.0

    def test_reclamation_kills_mid_run_and_destroys_sandbox(self, sim):
        platform = make_platform(sim)
        install_faults(
            platform,
            [FaultWindow(FaultKind.SANDBOX_RECLAIM, 0.0, 1e4, magnitude=1.0)],
            rng=RngStream(3),
        )
        errors = []

        def driver(sim):
            try:
                yield platform.invoke(InvocationRequest("f", 2.4))
            except SandboxReclaimedError as error:
                errors.append(error)

        sim.run(until=sim.spawn(driver(sim)))
        (error,) = errors
        assert 0.0 < error.ran_for_s < platform.spec("f").duration_for(2.4)
        assert error.billed_usd > 0.0
        assert platform.warm_pool_size("f") == 0  # destroyed, not pooled
        snap = platform.metrics.snapshot()
        assert snap["faas.reclamations"] == 1.0
        assert snap["faas.failures"] == 1.0

    def test_reclamation_respawns_for_queued_requests(self, sim):
        platform = make_platform(sim)
        platform.deploy(FunctionSpec("g", memory_mb=1769, package_mb=0, concurrency_limit=1))
        install_faults(
            platform,
            [FaultWindow(FaultKind.SANDBOX_RECLAIM, 0.0, 0.9, magnitude=1.0)],
            rng=RngStream(3),
        )
        outcomes = {"ok": 0, "reclaimed": 0}

        def caller(sim):
            try:
                yield platform.invoke(InvocationRequest("g", 2.4))
            except SandboxReclaimedError:
                outcomes["reclaimed"] += 1
            else:
                outcomes["ok"] += 1

        first = sim.spawn(caller(sim))
        second = sim.spawn(caller(sim))
        sim.run(until=sim.all_of([first, second]))
        # The first caller's sandbox is reclaimed; the queued second caller
        # must still complete on the cold-started replacement.
        assert outcomes == {"ok": 1, "reclaimed": 1}

    def test_reclaim_windows_require_rng(self):
        with pytest.raises(ValueError, match="RngStream"):
            PlatformFaultModel(
                FaultSchedule(
                    [FaultWindow(FaultKind.SANDBOX_RECLAIM, 0, 1, magnitude=0.5)]
                )
            )

    def test_reclaim_time_is_within_overlap(self):
        model = PlatformFaultModel(
            FaultSchedule(
                [FaultWindow(FaultKind.SANDBOX_RECLAIM, 10.0, 20.0, magnitude=1.0)]
            ),
            rng=RngStream(5),
        )
        for start, duration in [(5.0, 10.0), (12.0, 3.0), (18.0, 10.0)]:
            t = model.reclaim_time(start, duration)
            assert t is not None
            assert max(start, 10.0) <= t <= min(start + duration, 20.0)
        assert model.reclaim_time(25.0, 5.0) is None  # no overlap
        assert model.reclaim_time(12.0, 0.0) is None  # empty execution


class TestOutageAwareRetry:
    def test_attempts_wait_out_the_dead_zone(self, sim):
        platform = make_platform(sim)
        install_faults(platform, [FaultWindow(FaultKind.ZONE_OUTAGE, 0.0, 40.0)])
        results = []

        def driver(sim):
            results.append(
                (
                    yield invoke_with_retries(
                        platform,
                        InvocationRequest("f", 0.24),
                        policy=RetryPolicy(max_attempts=3, base_delay_s=1.0),
                        outage_aware=True,
                    )
                )
            )

        sim.run(until=sim.spawn(driver(sim)))
        (outcome,) = results
        assert outcome.attempts == 1  # the single delayed attempt succeeded
        assert outcome.invocation.started_at >= 40.0
        assert platform.metrics.snapshot()["faas.retry.outage_waits"] == 1.0

    def test_naive_retries_burn_into_the_outage(self, sim):
        platform = make_platform(sim)
        install_faults(platform, [FaultWindow(FaultKind.ZONE_OUTAGE, 0.0, 40.0)])
        failures = []

        def driver(sim):
            try:
                yield invoke_with_retries(
                    platform,
                    InvocationRequest("f", 0.24),
                    policy=RetryPolicy(max_attempts=3, base_delay_s=1.0),
                    outage_aware=False,
                )
            except Exception as error:  # noqa: BLE001 - asserting on type below
                failures.append(error)

        sim.run(until=sim.spawn(driver(sim)))
        assert len(failures) == 1
        assert platform.metrics.snapshot()["faas.outage_rejections"] == 3.0


class TestHedgedInvocation:
    def test_no_hedge_when_primary_is_fast(self, sim):
        platform = make_platform(sim)
        results = []

        def driver(sim):
            results.append(
                (
                    yield invoke_hedged(
                        platform,
                        InvocationRequest("f", 0.24),
                        hedge_after_s=1e4,
                    )
                )
            )

        sim.run(until=sim.spawn(driver(sim)))
        assert results[0].hedged is False
        assert "faas.hedges" not in platform.metrics.snapshot()

    def test_hedge_launches_and_wins_against_straggler(self, sim):
        platform = make_platform(sim)
        # Stragglers only in the first second: the primary starts inside
        # the window and is stretched 100x; the hedge starts after it
        # closes and runs at full speed, winning the race.
        install_faults(
            platform,
            [FaultWindow(FaultKind.STRAGGLER, 0.0, 1.0, magnitude=100.0)],
        )
        results = []

        def driver(sim):
            results.append(
                (
                    yield invoke_hedged(
                        platform,
                        InvocationRequest("f", 2.4),
                        hedge_after_s=5.0,
                    )
                )
            )

        sim.run(until=sim.spawn(driver(sim)))
        (outcome,) = results
        assert outcome.hedged is True
        base = platform.spec("f").duration_for(2.4)
        hedged_finish = outcome.invocation.finished_at
        assert hedged_finish < 0.5 + 100.0 * base  # beat the straggler
        assert platform.metrics.snapshot()["faas.hedges"] == 1.0

    def test_none_delay_degenerates_to_plain_retries(self, sim):
        platform = make_platform(sim)
        results = []

        def driver(sim):
            results.append(
                (
                    yield invoke_hedged(
                        platform, InvocationRequest("f", 0.24), hedge_after_s=None
                    )
                )
            )

        sim.run(until=sim.spawn(driver(sim)))
        assert results[0].hedged is False
        assert results[0].attempts == 1

    def test_invalid_hedge_delay(self, sim):
        platform = make_platform(sim)
        with pytest.raises(ValueError):
            invoke_hedged(platform, InvocationRequest("f", 1.0), hedge_after_s=0.0)


class _ScriptedPlatform:
    """The minimal platform surface ``invoke_hedged`` touches, with
    exact per-call durations and outcomes — the only way to pin both
    lanes to the *same* finish instant and exercise the both-finish
    race deterministically."""

    def __init__(self, sim, script):
        from repro.metrics import MetricRegistry

        self.sim = sim
        self.name = "stub"
        self.metrics = MetricRegistry()
        self._script = list(script)  # (duration_s, succeeds) per call
        self._calls = 0

    def invoke(self, request):
        from repro.serverless import Invocation, InvocationFailedError

        duration, ok = self._script[self._calls]
        self._calls += 1
        submitted = self.sim.now

        def proc():
            yield self.sim.timeout(duration)
            if not ok:
                raise InvocationFailedError(
                    request.function, ran_for_s=duration, billed_usd=0.001
                )
            return Invocation(
                request=request,
                submitted_at=submitted,
                started_at=submitted,
                finished_at=self.sim.now,
                cold_start=False,
                memory_mb=1769.0,
                billed_duration_s=duration,
                cost=0.002,
            )

        return self.sim.spawn(proc())

    def outage_clear_time(self, at):
        return None


class TestHedgeBothFinishRace:
    """Primary and hedge completing in the same event batch must
    attribute exactly one winner — never two bills, never a successful
    loser counted as waste."""

    def _race(self, sim, script, max_attempts=1):
        results = []

        def driver(sim):
            results.append(
                (
                    yield invoke_hedged(
                        _ScriptedPlatform(sim, script),
                        InvocationRequest("f", 1.0),
                        policy=RetryPolicy(
                            max_attempts=max_attempts, base_delay_s=1.0
                        ),
                        hedge_after_s=5.0,
                    )
                )
            )

        sim.run(until=sim.spawn(driver(sim)))
        (outcome,) = results
        return outcome

    def test_both_succeed_same_batch_primary_wins(self, sim):
        # Primary runs 0→10; hedge starts at 5, runs 5→10: both lanes
        # trigger in the same event batch at t=10.
        outcome = self._race(sim, [(10.0, True), (5.0, True)])
        assert sim.now == 10.0
        assert outcome.hedged is True
        # Lane order breaks the tie: the primary (submitted at t=0) is
        # the one winner, and its bill is counted exactly once.
        assert outcome.invocation.submitted_at == 0.0
        assert outcome.invocation.cost == 0.002
        assert outcome.total_cost == 0.002
        # The abandoned-but-successful hedge is not "waste": its bill
        # lands on the platform ledger, not on this outcome.
        assert outcome.wasted_usd == 0.0

    def test_primary_fails_in_same_batch_hedge_wins(self, sim):
        # Primary fails at t=10; hedge (started at 5) succeeds at t=10
        # in the same batch.  The hedge wins and the failed lane's bill
        # is attributed as waste.
        outcome = self._race(sim, [(10.0, False), (5.0, True)])
        assert sim.now == 10.0
        assert outcome.hedged is True
        assert outcome.invocation.submitted_at == 5.0
        assert outcome.wasted_usd == pytest.approx(0.001)
        assert outcome.total_cost == pytest.approx(0.003)


class TestHedgeAllLanesFailAccounting:
    """When every lane exhausts its retries, the combined error must
    carry *both* lanes' attempts and waste exactly once — previously
    only the last-failing lane's ledger survived, silently dropping the
    other lane's billed failures."""

    def _race_to_exhaustion(self, sim, script, max_attempts=1):
        from repro.serverless import RetriesExhaustedError

        errors = []

        def driver(sim):
            try:
                yield invoke_hedged(
                    _ScriptedPlatform(sim, script),
                    InvocationRequest("f", 1.0),
                    policy=RetryPolicy(
                        max_attempts=max_attempts, base_delay_s=1.0
                    ),
                    hedge_after_s=5.0,
                )
            except RetriesExhaustedError as error:
                errors.append(error)

        sim.run(until=sim.spawn(driver(sim)))
        (error,) = errors
        return error

    def test_same_batch_failures_sum_both_lanes(self, sim):
        # Primary fails at t=10; hedge (started at 5) fails at t=10 in
        # the same event batch.  Each lane billed one 0.001 failure.
        error = self._race_to_exhaustion(sim, [(10.0, False), (5.0, False)])
        assert sim.now == 10.0
        assert error.attempts == 2
        assert error.wasted_usd == pytest.approx(0.002)

    def test_staggered_failures_sum_both_lanes(self, sim):
        # Hedge fails first (t=7), primary later (t=10): the combined
        # error surfaces when the last lane dies and still carries the
        # earlier lane's waste.
        error = self._race_to_exhaustion(sim, [(10.0, False), (2.0, False)])
        assert sim.now == 10.0
        assert error.attempts == 2
        assert error.wasted_usd == pytest.approx(0.002)

    def test_retried_lanes_sum_every_attempt(self, sim):
        # Two attempts per lane, all failing: 4 attempts, 4 bills.
        script = [(10.0, False), (5.0, False), (2.0, False), (2.0, False)]
        error = self._race_to_exhaustion(sim, script, max_attempts=2)
        assert error.attempts == 4
        assert error.wasted_usd == pytest.approx(0.004)


class TestDegradationPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            DegradationPolicy(hedge_after_s=0.0)
        with pytest.raises(ValueError):
            DegradationPolicy(fallback_after_s=-1.0)
        with pytest.raises(ValueError):
            DegradationPolicy(fallback_slack_fraction=1.5)

    def test_fallback_budget(self):
        policy = DegradationPolicy(fallback_slack_fraction=0.5)
        assert policy.fallback_budget(now=100.0, deadline=300.0) == 100.0
        capped = DegradationPolicy(fallback_after_s=30.0, fallback_slack_fraction=0.5)
        assert capped.fallback_budget(now=100.0, deadline=300.0) == 30.0
        disabled = DegradationPolicy(fallback_local=False)
        assert disabled.fallback_budget(now=0.0, deadline=1e9) is None


class TestBrownout:
    def test_brownout_drains_a_fraction(self):
        env = Environment.build_custom(seed=1)
        before = env.ue.battery_level_j
        env.ue.brownout(0.25)
        assert env.ue.battery_level_j == pytest.approx(0.75 * before)
        snap = env.metrics.snapshot()
        assert snap["ue.brownouts"] == 1.0
        assert snap["ue.brownout_j"] == pytest.approx(0.25 * before)

    def test_full_brownout_never_raises(self):
        env = Environment.build_custom(seed=1)
        env.ue.brownout(1.0)
        assert env.ue.battery_level_j == 0.0
        env.ue.brownout(1.0)  # already empty: still a no-op, not an error

    def test_fraction_validated(self):
        env = Environment.build_custom(seed=1)
        with pytest.raises(ValueError):
            env.ue.brownout(1.5)


class TestFaultInjector:
    def schedule(self):
        return FaultSchedule(
            [
                FaultWindow(FaultKind.LINK_OUTAGE, 10.0, 20.0, target="uplink"),
                FaultWindow(FaultKind.ZONE_OUTAGE, 5.0, 15.0),
                FaultWindow(FaultKind.BATTERY_BROWNOUT, 1.0, 2.0, magnitude=0.1),
            ]
        )

    def test_attach_is_one_shot(self):
        env = Environment.build_custom(seed=1)
        injector = FaultInjector(self.schedule())
        injector.attach(env)
        with pytest.raises(RuntimeError):
            injector.attach(env)

    def test_environment_rejects_a_second_schedule(self):
        # A second inject_faults would double-wrap link traces and
        # re-schedule brownout drains — refuse rather than compose.
        env = Environment.build_custom(seed=1)
        inject_faults(env, self.schedule())
        with pytest.raises(RuntimeError, match="already has a fault schedule"):
            inject_faults(env, self.schedule())

    def test_attach_wires_every_layer(self):
        env = Environment.build_custom(seed=1)
        inject_faults(env, self.schedule())
        assert isinstance(env.uplink.links[0].trace, FaultedBandwidth)
        assert env.platform.faults is not None
        snap = env.metrics.snapshot()
        assert snap["faults.injected"] == 3.0
        assert snap["faults.injected.zone_outage"] == 1.0
        env.sim.run(until=5.0)
        assert env.metrics.snapshot()["ue.brownouts"] == 1.0

    def test_inject_faults_derives_rng_for_reclaim(self):
        env = Environment.build_custom(seed=1)
        inject_faults(
            env,
            FaultSchedule(
                [FaultWindow(FaultKind.SANDBOX_RECLAIM, 0, 10, magnitude=0.5)]
            ),
        )
        assert env.platform.faults.rng is not None


class TestControllerFallback:
    def test_controller_falls_back_to_local_when_cloud_stays_dark(self):
        env = Environment.build_custom(seed=7)
        # The zone is dark for the entire horizon: every cloud episode
        # must eventually give up and run locally.
        inject_faults(
            env,
            FaultSchedule([FaultWindow(FaultKind.ZONE_OUTAGE, 0.0, 1e6)]),
        )
        controller = OffloadController(
            env,
            photo_backup_app(),
            retry_policy=RetryPolicy(max_attempts=2, base_delay_s=1.0),
            degradation=DegradationPolicy(
                outage_aware_backoff=False,  # let attempts fail fast
                fallback_local=True,
                fallback_after_s=60.0,
            ),
        )
        controller.profile_offline()
        controller.plan(input_mb=2.0)
        report = controller.run_workload(
            [Job(controller.app, input_mb=2.0, deadline=3600.0)]
        )
        assert not report.failures
        assert report.results[0].met_deadline
        snap = env.metrics.snapshot()
        assert snap["photo_backup.fallbacks"] >= 1.0

    def test_no_degradation_policy_is_legacy_path(self):
        # degradation=None must not consult fault hooks at all — the
        # controller behaves exactly as before the subsystem existed.
        env = Environment.build_custom(seed=7)
        controller = OffloadController(env, photo_backup_app())
        assert controller.degradation is None
        controller.profile_offline()
        controller.plan(input_mb=1.0)
        report = controller.run_workload(
            [Job(controller.app, input_mb=1.0, deadline=3600.0)]
        )
        assert not report.failures
