"""Tests for the append-only run ledger and its CLI."""

import json

import pytest

from repro.cli import main
from repro.ledger import (
    LEDGER_SCHEMA,
    LedgerEntry,
    append_entry,
    config_sha256,
    diff_entries,
    make_entry,
    read_ledger,
    render_entries,
    resolve_ledger_path,
)


class TestPathResolution:
    def test_explicit_wins(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.jsonl"))
        assert resolve_ledger_path("mine.jsonl").name == "mine.jsonl"

    def test_env_overrides_default(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", str(tmp_path / "env.jsonl"))
        assert resolve_ledger_path().name == "env.jsonl"

    def test_empty_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_LEDGER", "nonempty.jsonl")
        assert resolve_ledger_path("") is None
        monkeypatch.setenv("REPRO_LEDGER", "")
        assert resolve_ledger_path() is None

    def test_default_when_unset(self, monkeypatch):
        monkeypatch.delenv("REPRO_LEDGER", raising=False)
        assert resolve_ledger_path().name == ".repro_ledger.jsonl"


class TestHashing:
    def test_key_order_does_not_matter(self):
        assert config_sha256({"a": 1, "b": 2}) == config_sha256(
            {"b": 2, "a": 1}
        )

    def test_value_change_changes_hash(self):
        assert config_sha256({"a": 1}) != config_sha256({"a": 2})


class TestAppendAndRead:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        entry = make_entry(
            "run", {"app": "photo_backup", "seed": 3}, wall_s=1.23456,
            metrics={"jobs_completed": 5}, artifacts=["out.json"],
            argv=["run", "--app", "photo_backup"],
        )
        assert append_entry(path, entry) == 0
        assert append_entry(path, entry) == 1
        entries = read_ledger(path)
        assert len(entries) == 2
        back = entries[0]
        assert back.command == "run"
        assert back.config == {"app": "photo_backup", "seed": 3}
        assert back.config_sha256 == entry.config_sha256
        assert back.wall_s == 1.235  # rounded at make_entry time
        assert back.metrics == {"jobs_completed": 5}
        assert back.artifacts == ["out.json"]

    def test_missing_file_reads_empty(self, tmp_path):
        assert read_ledger(tmp_path / "absent.jsonl") == []

    def test_corrupt_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        entry = make_entry("run", {"a": 1}, wall_s=0.1)
        append_entry(path, entry)
        with path.open("a") as handle:
            handle.write("{truncated\n")
            handle.write(json.dumps({"schema": "other/1"}) + "\n")
        append_entry(path, entry)
        entries = read_ledger(path)
        assert len(entries) == 2
        assert all(e.command == "run" for e in entries)

    def test_lines_carry_schema(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        append_entry(path, make_entry("fleet", {}, wall_s=0.0))
        line = json.loads(path.read_text().splitlines()[0])
        assert line["schema"] == LEDGER_SCHEMA


class TestRenderAndDiff:
    def _entry(self, **metrics):
        return make_entry("fleet", {"zones": 2}, wall_s=0.5, metrics=metrics)

    def test_render_uses_given_indices(self):
        entries = [self._entry(jobs_completed=4), self._entry(failures=1)]
        text = render_entries(entries, indices=[3, 9])
        assert "   3  " in text and "   9  " in text

    def test_diff_direction_aware(self):
        before = self._entry(jobs_completed=10, failures=0)
        after = self._entry(jobs_completed=8, failures=2)
        result = diff_entries(before, after)
        regressed = {row.metric for row in result.regressions}
        assert regressed == {"jobs_completed", "failures"}

    def test_diff_rejects_command_mismatch(self):
        a = make_entry("run", {}, wall_s=0.0)
        b = make_entry("fleet", {}, wall_s=0.0)
        with pytest.raises(ValueError):
            diff_entries(a, b)

    def test_diff_skips_non_numeric_metrics(self):
        before = self._entry(fleet_status="ok", alerts_fired=0)
        after = self._entry(fleet_status="critical", alerts_fired=3)
        result = diff_entries(before, after)
        assert {row.metric for row in result.rows} == {"alerts_fired"}


class TestCli:
    def _run(self, ledger, capsys):
        code = main([
            "run", "--app", "photo_backup", "--jobs", "1",
            "--ledger", str(ledger),
        ])
        assert code == 0
        return capsys.readouterr()

    def test_run_appends_and_show_lists(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        captured = self._run(ledger, capsys)
        assert "ledger: entry #0" in captured.err
        assert main(["ledger", "show", "--ledger", str(ledger)]) == 0
        out = capsys.readouterr().out
        assert "run" in out and "jobs_completed=1" in out

    def test_show_index_replays_full_config(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self._run(ledger, capsys)
        assert main(
            ["ledger", "show", "--ledger", str(ledger), "--index", "0"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["command"] == "run"
        assert payload["config"]["app"] == "photo_backup"
        assert payload["config_sha256"]

    def test_show_filters_and_json(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self._run(ledger, capsys)
        assert main([
            "ledger", "show", "--ledger", str(ledger),
            "--command", "sweep",
        ]) == 0
        assert "no matching entries" in capsys.readouterr().out
        assert main([
            "ledger", "show", "--ledger", str(ledger), "--json",
        ]) == 0
        line = json.loads(capsys.readouterr().out.splitlines()[0])
        assert line["schema"] == LEDGER_SCHEMA

    def test_ledger_diff_identical_runs_ok(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self._run(ledger, capsys)
        self._run(ledger, capsys)
        assert main(
            ["ledger", "diff", "0", "-1", "--ledger", str(ledger)]
        ) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_ledger_diff_out_of_range(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        self._run(ledger, capsys)
        with pytest.raises(SystemExit):
            main(["ledger", "diff", "0", "7", "--ledger", str(ledger)])

    def test_no_ledger_skips_append(self, tmp_path, capsys):
        code = main([
            "run", "--app", "photo_backup", "--jobs", "1",
            "--ledger", str(tmp_path / "ledger.jsonl"), "--no-ledger",
        ])
        assert code == 0
        assert not (tmp_path / "ledger.jsonl").exists()
        assert "ledger:" not in capsys.readouterr().err

    def test_fleet_records_health_metrics(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        code = main([
            "fleet", "--zones", "2", "--ues-per-zone", "1",
            "--jobs-per-ue", "1", "--window", "600", "--slack", "1200",
            "--monitor", "--ledger", str(ledger),
        ])
        assert code == 0
        capsys.readouterr()
        (entry,) = read_ledger(ledger)
        assert entry.command == "fleet"
        assert entry.metrics["fleet_status"] == "ok"
        assert entry.metrics["alerts_fired"] == 0
        assert entry.config["monitor"] is True

    def test_sweep_records_entry(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        code = main([
            "sweep", "--grid", '{"connectivity": ["4g"]}',
            "--base", '{"app": "photo_backup", "jobs": 1}',
            "--ledger", str(ledger),
        ])
        assert code == 0
        capsys.readouterr()
        (entry,) = read_ledger(ledger)
        assert entry.command == "sweep"
        assert entry.metrics["configs"] == 1


class TestErrorStatus:
    """A run that dies mid-flight must still leave a ledger record."""

    def test_successful_run_records_ok(self, tmp_path, capsys):
        ledger = tmp_path / "ledger.jsonl"
        assert main([
            "run", "--app", "photo_backup", "--jobs", "1",
            "--ledger", str(ledger),
        ]) == 0
        capsys.readouterr()
        (entry,) = read_ledger(ledger)
        assert entry.status == "ok"

    def test_crashed_run_records_error_entry(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.core.controller import OffloadController

        def boom(self, jobs):
            raise RuntimeError("died mid-flight")

        monkeypatch.setattr(OffloadController, "run_workload", boom)
        ledger = tmp_path / "ledger.jsonl"
        with pytest.raises(RuntimeError, match="mid-flight"):
            main([
                "run", "--app", "photo_backup", "--jobs", "1",
                "--ledger", str(ledger),
            ])
        captured = capsys.readouterr()
        assert "error" in captured.err
        (entry,) = read_ledger(ledger)
        assert entry.command == "run"
        assert entry.status == "error"
        assert entry.metrics == {"error": "RuntimeError"}
        # The config is recorded so the failed run is replayable.
        assert entry.config["app"] == "photo_backup"

    def test_crashed_fleet_records_error_entry(
        self, tmp_path, capsys, monkeypatch
    ):
        import repro.fleet.sharded as sharded

        def boom(*args, **kwargs):
            raise ValueError("shard blew up")

        monkeypatch.setattr(sharded, "run_sharded", boom)
        ledger = tmp_path / "ledger.jsonl"
        with pytest.raises(ValueError, match="blew up"):
            main([
                "fleet", "--zones", "2", "--ues-per-zone", "1",
                "--window", "600", "--slack", "1200",
                "--ledger", str(ledger),
            ])
        capsys.readouterr()
        (entry,) = read_ledger(ledger)
        assert entry.command == "fleet"
        assert entry.status == "error"
        assert entry.metrics == {"error": "ValueError"}

    def test_usage_errors_are_not_ledgered(self, tmp_path, capsys):
        # SystemExit from bad arguments is user input, not a run death.
        ledger = tmp_path / "ledger.jsonl"
        with pytest.raises(SystemExit):
            main([
                "run", "--app", "photo_backup", "--jobs", "1",
                "--actions-out", str(tmp_path / "a.log"),
                "--ledger", str(ledger),
            ])
        assert not ledger.exists()

    def test_status_round_trips_and_renders(self):
        entry = make_entry(
            "run", {"app": "x"}, wall_s=1.0,
            metrics={"error": "RuntimeError"}, status="error",
        )
        clone = LedgerEntry.from_dict(entry.to_dict())
        assert clone.status == "error"
        text = render_entries([entry])
        assert "error" in text
        # Legacy records without the field read back as ok.
        payload = entry.to_dict()
        del payload["status"]
        assert LedgerEntry.from_dict(payload).status == "ok"
