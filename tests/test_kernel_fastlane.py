"""Differential test: fast-lane kernel vs the reference heap-only kernel.

The :class:`~repro.sim.Simulator` splits pending work between an
immediate FIFO fast lane and the time heap; its correctness claim is
that dispatch order is *byte-identical* to the single-global-heap kernel
it replaced (same ``(time, sequence)`` contract).  This suite runs
randomly generated process programs — same-time and future timeouts,
immediate succeeds, spawns, joins, interrupts, ``call_at`` callbacks —
on both kernels and requires identical execution logs, clocks, and
event counts.

:class:`ReferenceSimulator` is the old kernel reconstructed by adapter:
it replaces ``_fast`` with a falsy shim whose ``append`` pushes straight
onto the heap at ``(now, next_sequence)``.  Because the shim is always
falsy, the inherited ``step``/``run``/``peek`` take their heap-only
branches, and because the shim assigns sequences in scheduling order it
reproduces the pre-fast-lane global ordering exactly.
"""

import heapq

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim.events import Interrupt


class _HeapLaneAdapter:
    """A ``_fast`` stand-in that reroutes every append onto the heap."""

    __slots__ = ("sim",)

    def __init__(self, sim: "ReferenceSimulator") -> None:
        self.sim = sim

    def append(self, item) -> None:
        sim = self.sim
        sim._sequence += 1
        heapq.heappush(sim._heap, [sim._now, sim._sequence, item])

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def popleft(self):  # pragma: no cover - falsy, so never drained
        raise AssertionError("reference kernel must never read the fast lane")


class ReferenceSimulator(Simulator):
    """The pre-fast-lane kernel: one global ``(time, sequence)`` heap."""

    def __init__(self, start: float = 0.0) -> None:
        super().__init__(start)
        self._fast = _HeapLaneAdapter(self)


# Each op is (kind, arg); arg's meaning depends on the kind.
OPS = st.tuples(
    st.sampled_from(
        ["t0", "t0", "delay", "succeed", "spawn", "interrupt", "call_at"]
    ),
    st.integers(min_value=0, max_value=5),
)
PROGRAMS = st.lists(
    st.lists(OPS, max_size=6), min_size=1, max_size=5
)


def _execute(sim_class, program):
    """Run ``program`` on a fresh kernel, returning its execution log.

    The log records every resume point with the process id, step index
    and clock — any divergence in dispatch order between two kernels
    shows up as reordered or re-timed entries.
    """
    sim = sim_class()
    log = []
    roots = []

    def body(pid, ops):
        for index, (kind, arg) in enumerate(ops):
            log.append(("step", pid, index, kind, sim.now))
            try:
                if kind == "t0":
                    yield sim.timeout(0.0, value=index)
                elif kind == "delay":
                    yield sim.timeout(0.5 * arg, value=index)
                elif kind == "succeed":
                    event = sim.event()
                    event.succeed((pid, index))
                    got = yield event
                    log.append(("value", pid, index, got, sim.now))
                elif kind == "spawn":
                    child_ops = [("t0", 0)] if arg % 2 else [("delay", arg)]
                    result = yield sim.spawn(body((pid, index), child_ops))
                    log.append(("join", pid, index, result, sim.now))
                elif kind == "interrupt":
                    roots[arg % len(roots)].interrupt(cause=(pid, index))
                    yield sim.timeout(0.0)
                elif kind == "call_at":
                    sim.call_at(
                        sim.now + 0.5 * arg,
                        lambda pid=pid, index=index: log.append(
                            ("call", pid, index, sim.now)
                        ),
                    )
                    yield sim.timeout(0.0)
            except Interrupt as interrupt:
                log.append(("intr", pid, index, interrupt.cause, sim.now))
        return pid

    for pid, ops in enumerate(program):
        roots.append(sim.spawn(body(pid, ops)))
    sim.run()
    log.append(("end", sim.now, sim.events_processed))
    return log


@given(program=PROGRAMS)
@settings(max_examples=120, deadline=None)
def test_fast_lane_matches_reference_kernel(program):
    assert _execute(Simulator, program) == _execute(
        ReferenceSimulator, program
    )


@given(
    delays=st.lists(
        st.sampled_from([0.0, 0.0, 0.5, 1.0, 1.5]), min_size=1, max_size=30
    )
)
@settings(max_examples=80, deadline=None)
def test_same_time_insertion_order_matches_reference(delays):
    """Dense same-timestamp traffic: the contract's hardest case."""

    def run(sim_class):
        sim = sim_class()
        order = []

        def waiter(tag, delay):
            yield sim.timeout(delay)
            order.append((tag, sim.now))
            yield sim.timeout(0.0)
            order.append((tag, "again", sim.now))

        for tag, delay in enumerate(delays):
            sim.spawn(waiter(tag, delay))
        sim.run()
        return order, sim.now, sim.events_processed

    assert run(Simulator) == run(ReferenceSimulator)


def test_reference_kernel_never_uses_fast_lane():
    sim = ReferenceSimulator()

    def proc(sim):
        yield sim.timeout(0.0)
        return "done"

    root = sim.spawn(proc(sim))
    assert len(sim._fast) == 0
    assert sim.run(until=root) == "done"
    assert len(sim._heap) == 0
