"""Differential test: fast-lane kernel vs the reference heap-only kernel.

The :class:`~repro.sim.Simulator` splits pending work between an
immediate FIFO fast lane and the time heap; its correctness claim is
that dispatch order is *byte-identical* to the single-global-heap kernel
it replaced (same ``(time, sequence)`` contract).  This suite runs
randomly generated process programs — same-time and future timeouts,
immediate succeeds, spawns, joins, interrupts, ``call_at`` callbacks —
on both kernels and requires identical execution logs, clocks, and
event counts.

:class:`ReferenceSimulator` is the old kernel reconstructed by adapter:
it replaces ``_fast`` with a falsy shim whose ``append`` pushes straight
onto the heap at ``(now, next_sequence)``.  Because the shim is always
falsy, the inherited ``step``/``run``/``peek`` take their heap-only
branches, and because the shim assigns sequences in scheduling order it
reproduces the pre-fast-lane global ordering exactly.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Simulator
from repro.sim._core import CKERNEL
from repro.sim.events import Interrupt


class _HeapLaneAdapter:
    """A ``_fast`` stand-in that reroutes every append onto the heap."""

    __slots__ = ("sim",)

    def __init__(self, sim: "ReferenceSimulator") -> None:
        self.sim = sim

    def append(self, item) -> None:
        sim = self.sim
        sim._sequence += 1
        heapq.heappush(sim._heap, [sim._now, sim._sequence, item])

    def __bool__(self) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def popleft(self):  # pragma: no cover - falsy, so never drained
        raise AssertionError("reference kernel must never read the fast lane")


class ReferenceSimulator(Simulator):
    """The pre-fast-lane kernel: one global ``(time, sequence)`` heap."""

    def __init__(self, start: float = 0.0) -> None:
        super().__init__(start)
        self._fast = _HeapLaneAdapter(self)


if CKERNEL is not None:

    class CompiledLoopSimulator(Simulator):
        """A simulator that dispatches through the compiled batched loop.

        ``run()`` engages the C core whenever the fast lane is a
        ``_ckernel.FastLane``, so this opts in per-instance without
        touching ``REPRO_SIM_CORE`` — the differential suite then fuzzes
        the compiled loop in the same process as the pure reference.
        """

        def __init__(self, start: float = 0.0) -> None:
            super().__init__(start)
            self._fast = CKERNEL.FastLane()

    SIM_CLASSES = [Simulator, CompiledLoopSimulator]
    SIM_CLASS_IDS = ["pure-loop", "compiled-loop"]
else:  # pragma: no cover - compiled core not built in this environment
    SIM_CLASSES = [Simulator]
    SIM_CLASS_IDS = ["pure-loop"]


# Each op is (kind, arg); arg's meaning depends on the kind.
OPS = st.tuples(
    st.sampled_from(
        ["t0", "t0", "delay", "succeed", "spawn", "interrupt", "call_at"]
    ),
    st.integers(min_value=0, max_value=5),
)
PROGRAMS = st.lists(
    st.lists(OPS, max_size=6), min_size=1, max_size=5
)


def _execute(sim_class, program):
    """Run ``program`` on a fresh kernel, returning its execution log.

    The log records every resume point with the process id, step index
    and clock — any divergence in dispatch order between two kernels
    shows up as reordered or re-timed entries.
    """
    sim = sim_class()
    log = []
    roots = []

    def body(pid, ops):
        for index, (kind, arg) in enumerate(ops):
            log.append(("step", pid, index, kind, sim.now))
            try:
                if kind == "t0":
                    yield sim.timeout(0.0, value=index)
                elif kind == "delay":
                    yield sim.timeout(0.5 * arg, value=index)
                elif kind == "succeed":
                    event = sim.event()
                    event.succeed((pid, index))
                    got = yield event
                    log.append(("value", pid, index, got, sim.now))
                elif kind == "spawn":
                    child_ops = [("t0", 0)] if arg % 2 else [("delay", arg)]
                    result = yield sim.spawn(body((pid, index), child_ops))
                    log.append(("join", pid, index, result, sim.now))
                elif kind == "interrupt":
                    roots[arg % len(roots)].interrupt(cause=(pid, index))
                    yield sim.timeout(0.0)
                elif kind == "call_at":
                    sim.call_at(
                        sim.now + 0.5 * arg,
                        lambda pid=pid, index=index: log.append(
                            ("call", pid, index, sim.now)
                        ),
                    )
                    yield sim.timeout(0.0)
            except Interrupt as interrupt:
                log.append(("intr", pid, index, interrupt.cause, sim.now))
        return pid

    for pid, ops in enumerate(program):
        roots.append(sim.spawn(body(pid, ops)))
    sim.run()
    log.append(("end", sim.now, sim.events_processed))
    return log


@pytest.mark.parametrize("sim_class", SIM_CLASSES, ids=SIM_CLASS_IDS)
@given(program=PROGRAMS)
@settings(max_examples=120, deadline=None)
def test_fast_lane_matches_reference_kernel(sim_class, program):
    assert _execute(sim_class, program) == _execute(
        ReferenceSimulator, program
    )


@pytest.mark.parametrize("checked_class", SIM_CLASSES, ids=SIM_CLASS_IDS)
@given(
    delays=st.lists(
        st.sampled_from([0.0, 0.0, 0.5, 1.0, 1.5]), min_size=1, max_size=30
    )
)
@settings(max_examples=80, deadline=None)
def test_same_time_insertion_order_matches_reference(checked_class, delays):
    """Dense same-timestamp traffic: the contract's hardest case."""

    def run(sim_class):
        sim = sim_class()
        order = []

        def waiter(tag, delay):
            yield sim.timeout(delay)
            order.append((tag, sim.now))
            yield sim.timeout(0.0)
            order.append((tag, "again", sim.now))

        for tag, delay in enumerate(delays):
            sim.spawn(waiter(tag, delay))
        sim.run()
        return order, sim.now, sim.events_processed

    assert run(checked_class) == run(ReferenceSimulator)


@pytest.mark.parametrize("checked_class", SIM_CLASSES, ids=SIM_CLASS_IDS)
@given(
    spawns=st.integers(min_value=2, max_value=10),
    kinds=st.lists(
        st.sampled_from(["t0", "t0", "interrupt", "succeed"]),
        min_size=1,
        max_size=3,
    ),
)
@settings(max_examples=60, deadline=None)
def test_same_time_homogeneous_bursts_match_reference(checked_class, spawns, kinds):
    """Same-time homogeneous bursts: the batching boundary's hardest case.

    ``spawns`` children all land at one timestamp and execute the same
    op mix — zero-delay timeouts, immediate succeeds, and interrupts
    aimed at the next sibling — so whole bursts flow through ``run()``'s
    batch drain, interleaved with mid-batch lane growth and mid-batch
    process death.  The heap-only reference must see the identical
    dispatch order.
    """

    def run(sim_class):
        sim = sim_class()
        log = []
        children = []

        def child(tag):
            try:
                for index, kind in enumerate(kinds):
                    log.append(("c", tag, index, kind, sim.now))
                    if kind == "t0":
                        yield sim.timeout(0.0)
                    elif kind == "interrupt":
                        victim = children[(tag + 1) % len(children)]
                        victim.interrupt(cause=tag)
                        yield sim.timeout(0.0)
                    else:
                        event = sim.event()
                        event.succeed(tag)
                        got = yield event
                        log.append(("v", tag, got, sim.now))
            except Interrupt as interrupt:
                log.append(("intr", tag, interrupt.cause, sim.now))

        def root():
            yield sim.timeout(1.0)
            # One spawn burst at t=1.0: every bootstrap occupies the
            # same-time lane before any child body runs.
            for tag in range(spawns):
                children.append(sim.spawn(child(tag)))

        sim.spawn(root())
        sim.run()
        log.append(("end", sim.now, sim.events_processed))
        return log

    assert run(checked_class) == run(ReferenceSimulator)


def test_reference_kernel_never_uses_fast_lane():
    sim = ReferenceSimulator()

    def proc(sim):
        yield sim.timeout(0.0)
        return "done"

    root = sim.spawn(proc(sim))
    assert len(sim._fast) == 0
    assert sim.run(until=root) == "done"
    assert len(sim._heap) == 0
