"""Tests for the span tracer and its disabled fast path."""

import pytest

from repro.sim import Simulator
from repro.telemetry import NULL_TRACER, NullTracer, Tracer, attach_tracer
from repro.telemetry.tracer import (
    PHASE_COLD_START,
    PHASE_EXECUTE,
    PHASE_JOB,
    PHASE_UPLOAD,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


class TestSpanRecording:
    def test_span_ids_are_sequential_from_one(self):
        tracer = Tracer(FakeClock())
        spans = [tracer.start_span(f"s{i}") for i in range(3)]
        assert [s.span_id for s in spans] == [1, 2, 3]

    def test_parenting_links_span_ids(self):
        tracer = Tracer(FakeClock())
        root = tracer.start_span("job", category=PHASE_JOB)
        child = tracer.start_span("upload", category=PHASE_UPLOAD, parent=root)
        assert child.parent_id == root.span_id
        assert root.parent_id is None

    def test_times_come_from_the_clock(self):
        clock = FakeClock(5.0)
        tracer = Tracer(clock)
        span = tracer.start_span("s")
        clock.now = 8.5
        tracer.end_span(span)
        assert span.start == 5.0
        assert span.end == 8.5
        assert span.duration == 3.5

    def test_end_span_is_idempotent(self):
        clock = FakeClock(1.0)
        tracer = Tracer(clock)
        span = tracer.start_span("s", category=PHASE_EXECUTE)
        clock.now = 2.0
        tracer.end_span(span)
        clock.now = 9.0
        tracer.end_span(span, late="attr")  # no-op on a closed span
        assert span.end == 2.0
        assert "late" not in span.attributes

    def test_attributes_from_start_end_and_annotate(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start_span("s", a=1)
        span.annotate(b=2)
        tracer.end_span(span, c=3)
        assert span.attributes == {"a": 1, "b": 2, "c": 3}

    def test_ended_span_feeds_labeled_summary(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        span = tracer.start_span("cs", category=PHASE_COLD_START)
        clock.now = 2.0
        tracer.end_span(span)
        snap = tracer.metrics.snapshot()
        assert snap['span_seconds_count{category="cold_start"}'] == 1
        assert snap['span_seconds_sum{category="cold_start"}'] == 2.0

    def test_record_span_with_explicit_times(self):
        tracer = Tracer(FakeClock(100.0))
        span = tracer.record_span("outage", "fault", 5.0, 25.0, target="uplink")
        assert (span.start, span.end) == (5.0, 25.0)
        assert span.closed
        assert span.attributes == {"target": "uplink"}

    def test_record_span_rejects_backwards_interval(self):
        with pytest.raises(ValueError, match="precedes"):
            Tracer(FakeClock()).record_span("bad", "fault", 10.0, 5.0)

    def test_instant_attaches_to_parent(self):
        clock = FakeClock(3.0)
        tracer = Tracer(clock)
        parent = tracer.start_span("job")
        tracer.instant("attempt_failed", parent=parent, cause="Boom")
        # Listener-free instants buffer in the write ring; any flush
        # point (here an explicit flush) materialises them.
        tracer.flush()
        assert parent.events == [(3.0, "attempt_failed", {"cause": "Boom"})]

    def test_parentless_instant_gets_synthetic_span(self):
        tracer = Tracer(FakeClock(4.0))
        tracer.instant("orphan", note="x")
        (span,) = tracer.spans
        assert span.start == span.end == 4.0
        assert span.events == [(4.0, "orphan", {"note": "x"})]

    def test_ring_preserves_span_id_order_across_flush_points(self):
        # A buffered parentless instant must claim its synthetic span id
        # *before* any span started later — even though the Span object
        # is only built at the flush point start_span() triggers.
        clock = FakeClock(1.0)
        tracer = Tracer(clock)
        tracer.instant("first")
        clock.now = 2.0
        later = tracer.start_span("job")
        spans = tracer.spans
        assert [s.name for s in spans] == ["first", "job"]
        assert spans[0].span_id < later.span_id
        assert spans[0].start == spans[0].end == 1.0

    def test_ring_captures_clock_at_write_time(self):
        clock = FakeClock(1.0)
        tracer = Tracer(clock)
        parent = tracer.start_span("job")
        tracer.instant("tick", parent=parent)
        clock.now = 9.0  # advances before the flush
        tracer.flush()
        assert parent.events == [(1.0, "tick", {})]

    def test_ring_wraps_past_capacity(self):
        from repro.telemetry.tracer import _RING_CAPACITY

        tracer = Tracer(FakeClock(0.0))
        parent = tracer.start_span("job")
        total = _RING_CAPACITY * 2 + 7
        for index in range(total):
            tracer.instant("tick", parent=parent, i=index)
        tracer.flush()
        assert len(parent.events) == total
        assert [attrs["i"] for _, _, attrs in parent.events] == list(range(total))

    def test_subscribe_flushes_buffered_instants(self):
        tracer = Tracer(FakeClock(0.0))
        tracer.instant("before")
        seen = []

        class Listener:
            def on_span_end(self, span):
                seen.append(("end", span.name))

            def on_instant(self, at, name, attributes, parent):
                seen.append(("instant", name))

        tracer.subscribe(Listener())
        tracer.instant("after")
        # The pre-subscribe instant was materialised (not replayed to the
        # listener); the post-subscribe one took the direct path.
        assert seen == [("instant", "after")]
        assert [s.name for s in tracer.spans] == ["before", "after"]

    def test_end_subtree_closes_open_descendants_only(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        job = tracer.start_span("job", category=PHASE_JOB)
        comp = tracer.start_span("comp", parent=job)
        transfer = tracer.start_span("xfer", parent=comp)
        other = tracer.start_span("other_job", category=PHASE_JOB)
        clock.now = 5.0
        tracer.end_subtree(job, error="Boom")
        for span in (job, comp, transfer):
            assert span.end == 5.0
            assert span.attributes["error"] == "Boom"
        assert not other.closed  # unrelated tree untouched
        tracer.end_subtree(NULL_TRACER.start_span("null"))  # no-op

    def test_open_spans_and_category_queries(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        a = tracer.start_span("a", category=PHASE_UPLOAD)
        tracer.start_span("b", category=PHASE_EXECUTE)
        tracer.end_span(a)
        assert [s.name for s in tracer.open_spans()] == ["b"]
        assert [s.name for s in tracer.spans_by_category(PHASE_UPLOAD)] == ["a"]
        assert len(tracer) == 2


class TestNullTracer:
    def test_disabled_flag_is_class_attribute(self):
        assert NullTracer.enabled is False
        assert Tracer.enabled is True

    def test_all_operations_are_no_ops(self):
        null = NullTracer()
        span = null.start_span("s", category="x", parent=None, attr=1)
        assert span.span_id == 0
        assert span.annotate(more=2) is span
        null.end_span(span, attr=3)
        assert null.record_span("r", "c", 0.0, 1.0).span_id == 0
        assert null.instant("i", cause="x") is None
        assert null.spans == []
        assert null.metrics.snapshot() == {}

    def test_simulator_carries_null_tracer_by_default(self):
        assert Simulator().tracer is NULL_TRACER

    def test_real_tracer_ignores_null_span_end(self):
        tracer = Tracer(FakeClock())
        null_span = NULL_TRACER.start_span("x")
        tracer.end_span(null_span)  # must not raise or record
        assert len(tracer) == 0


class TestAttachTracer:
    def test_attach_installs_on_simulator(self):
        class Env:
            pass

        env = Env()
        env.sim = Simulator()
        tracer = attach_tracer(env)
        assert env.sim.tracer is tracer
        assert tracer.enabled

    def test_attach_accepts_prebuilt_tracer(self):
        class Env:
            pass

        env = Env()
        env.sim = Simulator()
        mine = Tracer(env.sim)
        assert attach_tracer(env, mine) is mine
        assert env.sim.tracer is mine
