"""End-to-end scenario tests composing several features at once.

Where test_integration.py checks pairwise interactions, these scenarios
run the kind of multi-feature configurations a real deployment would:
storage-staged fleets under failures, multi-revision pipelines with
drifting demand, and the full frugal-device stack.
"""

import math
from dataclasses import replace

import pytest

from repro import (
    DeadlineBatcher,
    Environment,
    Job,
    ObjectiveWeights,
    OffloadController,
    photo_backup_app,
)
from repro.apps import document_ocr_app, nightly_analytics_app
from repro.cicd import SourceRepository
from repro.core.pipeline import OffloadPipeline, PipelineConfig
from repro.core.scheduler import BatteryAwareScheduler
from repro.device.ue import DeviceSpec
from repro.fleet import FleetController, FleetEnvironment
from repro.serverless import PlatformConfig, RetryPolicy
from repro.storage import StoragePricing


class TestStorageFleetUnderFailures:
    def test_fleet_with_storage_and_failures_completes(self):
        """12 devices, staged data plane, 5% transient failure rate:
        everything completes, the store drains, the bill adds up."""
        env = FleetEnvironment.build(
            n_devices=12,
            seed=31,
            connectivity=["4g", "wifi"],
            with_storage=True,
            platform_config=PlatformConfig(
                keep_alive_s=300.0, failure_probability=0.05
            ),
        )
        fleet = FleetController(env, nightly_analytics_app())
        fleet.profile_offline()
        fleet.plan(input_mb=5.0)
        jobs = {
            i: [Job(fleet.app, input_mb=5.0, released_at=120.0 * i,
                    deadline=120.0 * i + 7200.0)]
            for i in range(12)
        }
        report = fleet.run(jobs)
        assert report.jobs_completed == 12
        assert report.deadline_miss_rate == 0.0
        # The staged data plane was used and fully drained.
        storage = env.devices[0].storage
        assert storage.metrics.counter("store.puts").value > 0
        assert len(storage) == 0
        # Job-side cost accounting covers invocations (incl. failed
        # attempts) plus data-plane fees; it must not be below the
        # platform's own invoice.
        assert report.total_cloud_cost_usd >= env.platform.total_cost - 1e-9


class TestPipelineAcrossDriftingRevisions:
    def test_five_revisions_gate_correctly(self):
        """A revision history with two regressions (one big, one slow
        creep) and two honest improvements: the gate admits improvements
        and blocks only the big regression — the creep slips under the
        25% threshold, which is the documented trade of canary gating."""
        env = Environment.build(seed=32)
        app = nightly_analytics_app()
        repo = SourceRepository("analytics", app)
        pipeline = OffloadPipeline(
            env, repo, config=PipelineConfig(canary_jobs=3)
        )
        outcomes = [pipeline.run_to_completion().promoted]

        aggregate = app.component("aggregate")

        def scaled(factor, base):
            return base.with_component(
                replace(
                    base.component("aggregate"),
                    work_gcycles=aggregate.work_gcycles * factor,
                    work_gcycles_per_mb=aggregate.work_gcycles_per_mb * factor,
                )
            )

        history = [
            (0.9, True),    # honest improvement
            (1.08, True),   # slow creep: below the gate threshold
            (5.0, False),   # blatant regression: blocked
            (0.85, True),   # recovery lands
        ]
        for factor, expected in history:
            revision_app = scaled(factor, app)
            repo.commit(revision_app, f"aggregate x{factor}")
            run = pipeline.run_to_completion()
            outcomes.append(run.promoted)
            assert run.promoted == expected, (factor, run.stages[-1].detail)

        # Production ends on the recovery revision, not the regression.
        assert pipeline.production_revision == repo.head.revision


class TestFrugalDeviceStack:
    def test_battery_dvfs_batcher_admission_together(self):
        """The full frugal stack on a weak battery: admission control
        sheds the impossible job, everything else completes within
        deadline, and the battery survives."""
        env = Environment.build(
            seed=33,
            device=DeviceSpec(battery_capacity_j=2_000.0),
        )
        controller = OffloadController(
            env,
            document_ocr_app(),
            scheduler=BatteryAwareScheduler(
                battery_fraction_fn=lambda: env.ue.battery_fraction,
                inner=DeadlineBatcher(window_s=600.0),
                threshold=0.15,
            ),
            dvfs=True,
            admission_control=True,
            weights=ObjectiveWeights.non_time_critical(),
        )
        controller.profile_offline()
        controller.plan(input_mb=5.0)
        jobs = [
            Job(controller.app, input_mb=5.0, released_at=300.0 * i,
                deadline=300.0 * i + 2 * 3600.0)
            for i in range(5)
        ]
        jobs.append(  # physically impossible: shed at the door
            Job(controller.app, input_mb=5.0, released_at=10.0, deadline=10.5)
        )
        report = controller.run_workload(jobs)
        assert report.jobs_completed == 5
        assert report.rejections == 1
        completed_misses = sum(
            1 for r in report.results if not r.met_deadline
        )
        assert completed_misses == 0
        assert env.ue.battery_level_j > 0

    def test_frugal_stack_beats_naive_on_energy(self):
        def run(frugal):
            env = Environment.build(seed=34)
            if frugal:
                controller = OffloadController(
                    env, document_ocr_app(),
                    scheduler=DeadlineBatcher(window_s=900.0),
                    dvfs=True,
                    weights=ObjectiveWeights.non_time_critical(),
                )
            else:
                from repro.baselines import local_only_controller

                controller = local_only_controller(env, document_ocr_app())
            if controller.partition is None:
                controller.profile_offline()
                controller.plan(input_mb=5.0)
            jobs = [
                Job(controller.app, input_mb=5.0, released_at=200.0 * i,
                    deadline=200.0 * i + 4 * 3600.0)
                for i in range(4)
            ]
            return controller.run_workload(jobs)

        frugal = run(True)
        naive = run(False)
        assert frugal.total_ue_energy_j < 0.5 * naive.total_ue_energy_j
        assert frugal.deadline_miss_rate == 0.0


class TestRetryStormResilience:
    def test_high_failure_rate_with_generous_retries(self):
        """At a 40% per-attempt failure rate with a deep retry budget,
        the system still completes everything — slower and pricier, with
        the waste visible in the accounting."""
        env = Environment.build(
            seed=35,
            platform_config=PlatformConfig(failure_probability=0.4),
        )
        controller = OffloadController(
            env,
            photo_backup_app(),
            retry_policy=RetryPolicy(max_attempts=12, base_delay_s=0.25),
        )
        controller.profile_offline()
        controller.plan(input_mb=3.0)
        jobs = [
            Job(controller.app, input_mb=3.0, released_at=60.0 * i,
                deadline=60.0 * i + 7200.0)
            for i in range(6)
        ]
        report = controller.run_workload(jobs)
        assert report.jobs_completed == 6
        failures = env.metrics.snapshot()["faas.failures"]
        assert failures > 5
        # The bill exceeds what the successful executions alone cost.
        successful = sum(i.cost for i in env.platform.invocations)
        assert report.total_cloud_cost_usd > successful
