"""Edge-case tests surfaced while building the fault subsystem.

Each of these is a boundary the degradation machinery actually crosses:
interrupting an episode that already finished (fallback racing a win),
throttling surfacing through the retry wrapper, and fault knobs that
require an RNG refusing to run without one.
"""

import pytest

from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    PlatformConfig,
    RetryPolicy,
    ServerlessPlatform,
    ThrottledError,
    invoke_with_retries,
)
from repro.sim import Interrupt, Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestInterruptEdges:
    def test_interrupting_a_finished_process_is_a_noop(self, sim):
        def quick(sim):
            yield sim.timeout(1.0)
            return "done"

        process = sim.spawn(quick(sim))
        sim.run()
        assert process.triggered and process.value == "done"
        process.interrupt("too late")  # must not raise or re-trigger
        assert process.value == "done"

    def test_double_interrupt_only_delivers_once(self, sim):
        caught = []

        def sleeper(sim):
            try:
                yield sim.timeout(100.0)
            except Interrupt as interrupt:
                caught.append(interrupt.cause)
            yield sim.timeout(1.0)
            return "recovered"

        process = sim.spawn(sleeper(sim))

        def interruptor(sim):
            yield sim.timeout(5.0)
            process.interrupt("first")
            process.interrupt("second")  # lands after the first is handled

        sim.spawn(interruptor(sim))
        sim.run()
        # The second interrupt arrives while the process sleeps its
        # recovery timeout; a process that catches it once and finishes
        # quickly may also legitimately have completed.  What must hold:
        # the first cause was delivered, and the process ended cleanly.
        assert caught[0] == "first"
        assert process.triggered


class TestThrottlingEdges:
    def make_platform(self, sim):
        platform = ServerlessPlatform(
            sim,
            PlatformConfig(
                cold_start_base_s=0.1,
                cold_start_per_package_mb_s=0.0,
                max_queue_per_function=1,
            ),
        )
        platform.deploy(
            FunctionSpec("f", memory_mb=1769, package_mb=0, concurrency_limit=1)
        )
        return platform

    def test_throttle_propagates_through_invoke_with_retries(self, sim):
        """ThrottledError is not a transient failure: the retry wrapper
        must let it escape instead of burning attempts on a full queue."""
        platform = self.make_platform(sim)
        errors = []

        def occupant(sim, work):
            yield platform.invoke(InvocationRequest("f", work))

        def contender(sim):
            yield sim.timeout(1.0)  # sandbox busy, queue already full
            try:
                yield invoke_with_retries(
                    platform,
                    InvocationRequest("f", 0.24),
                    policy=RetryPolicy(max_attempts=5, base_delay_s=0.1),
                )
            except ThrottledError as error:
                errors.append(error)

        lanes = [
            sim.spawn(occupant(sim, 24.0)),  # takes the only sandbox
            sim.spawn(occupant(sim, 24.0)),  # fills the single queue slot
            sim.spawn(contender(sim)),
        ]
        sim.run(until=sim.all_of(lanes))
        assert len(errors) == 1
        # No attempt ran, so nothing failed and nothing was retried.
        assert platform.metrics.snapshot().get("faas.failures", 0.0) == 0.0

    def test_full_queue_rejects_at_submission(self, sim):
        platform = self.make_platform(sim)
        rejected = []

        def driver(sim):
            yield platform.invoke(InvocationRequest("f", 0.0))  # warms a sandbox
            blocker = platform.invoke(InvocationRequest("f", 24.0))
            queued = platform.invoke(InvocationRequest("f", 0.24))
            try:
                yield platform.invoke(InvocationRequest("f", 0.24))
            except ThrottledError as error:
                rejected.append(error)
            yield sim.all_of([blocker, queued])

        sim.run(until=sim.spawn(driver(sim)))
        assert len(rejected) == 1


class TestRngRequirements:
    def test_failure_probability_without_rng_raises(self, sim):
        with pytest.raises(ValueError, match="RngStream"):
            ServerlessPlatform(
                sim, PlatformConfig(failure_probability=0.1), rng=None
            )

    def test_failure_probability_with_rng_is_accepted(self, sim):
        from repro.sim.rng import RngStream

        platform = ServerlessPlatform(
            sim, PlatformConfig(failure_probability=0.1), rng=RngStream(1)
        )
        assert platform.config.failure_probability == 0.1
