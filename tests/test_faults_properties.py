"""Property-based tests for the fault subsystem's core invariants.

Three contracts the degradation machinery leans on:

* schedule normalization leaves no two windows of one ``(kind, target)``
  group overlapping or touching — queries see at most one active window;
* retry backoff is monotone in the attempt index and stays inside the
  jitter envelope — degradation never *shortens* a wait by retrying more;
* retry accounting is conservative: every dollar a failed attempt billed
  shows up in ``wasted_usd``, and the sum over all outcomes equals the
  platform's own ledger.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.faults import FaultKind, FaultSchedule, FaultWindow
from repro.serverless import (
    FunctionSpec,
    InvocationRequest,
    PlatformConfig,
    RetriesExhaustedError,
    RetryPolicy,
    ServerlessPlatform,
    invoke_with_retries,
)
from repro.sim import Simulator
from repro.sim.rng import RngStream

# Magnitude-agnostic kinds keep window generation simple: any >= 0
# magnitude is legal for outages, and stragglers accept anything >= 1.
_KINDS = st.sampled_from(
    [FaultKind.LINK_OUTAGE, FaultKind.ZONE_OUTAGE, FaultKind.STRAGGLER]
)
_TARGETS = st.sampled_from([None, "uplink", "downlink"])


@st.composite
def windows(draw):
    start = draw(st.floats(min_value=0.0, max_value=1e4))
    length = draw(st.floats(min_value=1e-3, max_value=1e3))
    kind = draw(_KINDS)
    magnitude = draw(st.floats(min_value=1.0, max_value=10.0))
    return FaultWindow(
        kind, start, start + length, target=draw(_TARGETS), magnitude=magnitude
    )


class TestScheduleNormalization:
    @given(ws=st.lists(windows(), min_size=0, max_size=30))
    @settings(max_examples=120)
    def test_normalized_windows_never_overlap_within_a_group(self, ws):
        schedule = FaultSchedule(ws)
        groups = {}
        for window in schedule.windows:
            groups.setdefault((window.kind, window.target), []).append(window)
        for group in groups.values():
            ordered = sorted(group, key=lambda w: w.start)
            for left, right in zip(ordered, ordered[1:]):
                # Strictly apart: touching windows must have been merged.
                assert left.end < right.start

    @given(ws=st.lists(windows(), min_size=1, max_size=30))
    @settings(max_examples=120)
    def test_normalization_preserves_coverage(self, ws):
        """Every instant inside any input window is active afterwards."""
        schedule = FaultSchedule(ws)
        for window in ws:
            for t in (window.start, (window.start + window.end) / 2.0):
                assert schedule.is_active(window.kind, t, window.target)

    @given(ws=st.lists(windows(), min_size=0, max_size=30))
    @settings(max_examples=60)
    def test_normalization_is_idempotent(self, ws):
        once = FaultSchedule(ws)
        twice = FaultSchedule(once.windows)
        assert once.windows == twice.windows


class TestBackoffProperties:
    @given(
        base=st.floats(min_value=0.0, max_value=60.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        attempts=st.integers(min_value=2, max_value=12),
    )
    @settings(max_examples=120)
    def test_delay_is_monotone_without_jitter(self, base, multiplier, attempts):
        policy = RetryPolicy(
            max_attempts=attempts, base_delay_s=base, multiplier=multiplier
        )
        delays = [policy.delay_before_attempt(k) for k in range(attempts)]
        assert delays[0] == 0.0
        assert all(b >= a for a, b in zip(delays, delays[1:]))

    @given(
        base=st.floats(min_value=0.01, max_value=60.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        jitter=st.floats(min_value=0.0, max_value=0.99),
        attempt=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    @settings(max_examples=120)
    def test_jittered_delay_stays_in_envelope(
        self, base, multiplier, jitter, attempt, seed
    ):
        policy = RetryPolicy(
            max_attempts=attempt + 1,
            base_delay_s=base,
            multiplier=multiplier,
            jitter=jitter,
        )
        nominal = base * multiplier ** (attempt - 1)
        delay = policy.delay_before_attempt(attempt, RngStream(seed))
        assert nominal * (1.0 - jitter) <= delay <= nominal * (1.0 + jitter)
        # And jitter never breaks determinism: same stream, same delay.
        assert delay == policy.delay_before_attempt(attempt, RngStream(seed))


class TestWastedCostAccounting:
    @given(
        failure_probability=st.floats(min_value=0.05, max_value=0.8),
        seed=st.integers(min_value=0, max_value=2**16),
        n_calls=st.integers(min_value=1, max_value=8),
    )
    @settings(max_examples=40)
    def test_wasted_usd_reconciles_with_the_platform_ledger(
        self, failure_probability, seed, n_calls
    ):
        """sum(outcome.total_cost) + sum(exhausted.wasted_usd) == the bill.

        Every failed attempt bills the platform; retry accounting must
        attribute exactly that amount to ``wasted_usd`` — no double
        counting, no leakage.
        """
        sim = Simulator()
        platform = ServerlessPlatform(
            sim,
            PlatformConfig(
                cold_start_base_s=0.1,
                cold_start_per_package_mb_s=0.0,
                failure_probability=failure_probability,
            ),
            rng=RngStream(seed),
        )
        platform.deploy(FunctionSpec("f", memory_mb=1769, package_mb=0))
        accounted = []

        def driver(sim):
            for _ in range(n_calls):
                try:
                    outcome = yield invoke_with_retries(
                        platform,
                        InvocationRequest("f", 2.4),
                        policy=RetryPolicy(max_attempts=3, base_delay_s=0.5),
                    )
                except RetriesExhaustedError as error:
                    accounted.append(error.wasted_usd)
                    assert error.attempts == 3
                else:
                    accounted.append(outcome.total_cost)
                    assert outcome.wasted_usd >= 0.0

        sim.run(until=sim.spawn(driver(sim)))
        assert math.isclose(
            sum(accounted), platform.total_cost, rel_tol=1e-12, abs_tol=1e-15
        )
