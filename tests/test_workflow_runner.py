"""Tests for workflow-orchestrated job execution."""

import pytest

from repro import Environment, Job, ObjectiveWeights, photo_backup_app
from repro.apps import AppGraph, Component, DataFlow, ml_training_app, nightly_analytics_app
from repro.core.controller import OffloadController
from repro.core.partitioning import FixedPartitioner, Partition
from repro.core.workflow_runner import WorkflowOffloadRunner, is_phase_shaped


class TestPhaseShape:
    def test_catalog_full_offload_is_phase_shaped(self):
        for factory in (photo_backup_app, nightly_analytics_app, ml_training_app):
            app = factory()
            assert is_phase_shaped(app, Partition.full_offload(app))

    def test_local_only_is_phase_shaped(self):
        app = photo_backup_app()
        assert is_phase_shaped(app, Partition.local_only(app))

    def test_sandwich_is_not_phase_shaped(self):
        """cloud -> local -> cloud breaks the single-region property."""
        app = AppGraph(
            "sandwich",
            [Component("a"), Component("b"), Component("c")],
            [DataFlow("a", "b"), DataFlow("b", "c")],
        )
        partition = Partition("sandwich", frozenset({"a", "c"}))
        assert not is_phase_shaped(app, partition)

    def test_runner_rejects_non_phase_shaped(self):
        app = AppGraph(
            "sandwich",
            [Component("a"), Component("b"), Component("c")],
            [DataFlow("a", "b"), DataFlow("b", "c")],
        )
        env = Environment.build(seed=0)
        with pytest.raises(ValueError, match="phase-shaped"):
            WorkflowOffloadRunner(
                env, app, Partition("sandwich", frozenset({"a", "c"}))
            )


class TestWorkflowRunner:
    def make_runner(self, seed=1, app=None, partition=None):
        env = Environment.build(seed=seed)
        app = app or nightly_analytics_app()
        partition = partition or Partition.full_offload(app)
        return env, WorkflowOffloadRunner(env, app, partition)

    def test_job_completes_with_dag_order(self):
        env, runner = self.make_runner()
        report = runner.run_workload(
            [Job(runner.app, input_mb=4.0, deadline=3600.0)]
        )
        assert report.jobs_completed == 1
        finish = report.results[0].component_finish_times
        assert set(finish) == set(runner.app.component_names)
        for flow in runner.app.flows:
            assert finish[flow.src] <= finish[flow.dst]

    def test_orchestration_cost_charged(self):
        env, runner = self.make_runner()
        report = runner.run_workload(
            [Job(runner.app, input_mb=4.0, deadline=3600.0)]
        )
        result = report.results[0]
        assert result.cloud_cost_usd > env.platform.total_cost  # + transitions
        assert runner.engine.total_orchestration_cost > 0

    def test_deep_sleep_saves_energy_vs_controller(self):
        """The workflow runner's UE energy is lower than the controller's
        for the same partition: deep sleep beats awake-idle coordination."""
        app = nightly_analytics_app()
        partition = Partition.full_offload(app)

        env_wf, runner = self.make_runner(seed=9, app=app, partition=partition)
        wf_report = runner.run_workload([Job(app, input_mb=8.0, deadline=7200.0)])

        env_ctl = Environment.build(seed=9)
        controller = OffloadController(
            env_ctl, nightly_analytics_app(),
            partitioner=FixedPartitioner(partition),
        )
        controller.profile_offline()
        controller.plan(input_mb=8.0)
        ctl_report = controller.run_workload(
            [Job(controller.app, input_mb=8.0, deadline=7200.0)]
        )
        assert (
            wf_report.results[0].ue_energy_j < ctl_report.results[0].ue_energy_j
        )
        # ...but pays orchestration dollars the controller does not.
        assert (
            wf_report.results[0].cloud_cost_usd
            > ctl_report.results[0].cloud_cost_usd
        )

    def test_local_only_partition_runs_without_engine(self):
        app = nightly_analytics_app()
        env, runner = self.make_runner(
            seed=2, app=app, partition=Partition.local_only(app)
        )
        report = runner.run_workload([Job(app, input_mb=2.0)])
        assert report.jobs_completed == 1
        assert report.results[0].cloud_cost_usd == 0.0
        assert len(runner.engine.executions) == 0

    def test_memory_plan_applied(self):
        app = nightly_analytics_app()
        env = Environment.build(seed=3)
        runner = WorkflowOffloadRunner(
            env, app, Partition.full_offload(app),
            memory_plan={"aggregate": 4096.0},
        )
        assert env.platform.spec("wf.nightly_analytics.aggregate").memory_mb == 4096.0

    def test_foreign_job_rejected(self):
        env, runner = self.make_runner()
        with pytest.raises(ValueError):
            runner.submit(Job(photo_backup_app()))

    def test_multiple_jobs(self):
        env, runner = self.make_runner(seed=4)
        jobs = [
            Job(runner.app, input_mb=3.0, released_at=60.0 * i, deadline=60.0 * i + 3600)
            for i in range(4)
        ]
        report = runner.run_workload(jobs)
        assert report.jobs_completed == 4
        assert len(runner.engine.executions) == 4
