"""Tests for named random streams (determinism is load-bearing here)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngStream, SeedSequenceRegistry


class TestRngStream:
    def test_same_seed_same_draws(self):
        a = RngStream(123)
        b = RngStream(123)
        assert [a.uniform() for _ in range(5)] == [b.uniform() for _ in range(5)]

    def test_different_seeds_differ(self):
        a = RngStream(1)
        b = RngStream(2)
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_exponential_mean_validation(self):
        with pytest.raises(ValueError):
            RngStream(0).exponential(0.0)

    @given(st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=25, deadline=None)
    def test_exponential_positive(self, mean):
        stream = RngStream(7)
        assert all(stream.exponential(mean) > 0 for _ in range(20))

    @given(
        st.floats(min_value=0.1, max_value=50.0),
        st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_lognormal_bounded_respects_bounds(self, median, sigma):
        stream = RngStream(9)
        low, high = median * 0.5, median * 2.0
        for _ in range(20):
            draw = stream.lognormal_bounded(median, sigma, low=low, high=high)
            assert low <= draw <= high

    def test_lognormal_requires_positive_median(self):
        with pytest.raises(ValueError):
            RngStream(0).lognormal_bounded(0.0, 1.0)

    def test_choice_uniform(self):
        stream = RngStream(3)
        options = ["a", "b", "c"]
        picks = {stream.choice(options) for _ in range(100)}
        assert picks == {"a", "b", "c"}

    def test_choice_weighted_zero_weight_never_picked(self):
        stream = RngStream(4)
        picks = {
            stream.choice(["never", "always"], weights=[0.0, 1.0])
            for _ in range(50)
        }
        assert picks == {"always"}

    def test_choice_empty_rejected(self):
        with pytest.raises(ValueError):
            RngStream(0).choice([])

    def test_choice_weight_length_mismatch(self):
        with pytest.raises(ValueError):
            RngStream(0).choice(["a"], weights=[1.0, 2.0])

    def test_choice_nonpositive_weights_rejected(self):
        with pytest.raises(ValueError):
            RngStream(0).choice(["a", "b"], weights=[0.0, 0.0])

    def test_bernoulli_bounds(self):
        stream = RngStream(5)
        assert not any(stream.bernoulli(0.0) for _ in range(20))
        assert all(stream.bernoulli(1.0) for _ in range(20))
        with pytest.raises(ValueError):
            stream.bernoulli(1.5)

    def test_shuffle_is_permutation(self):
        stream = RngStream(6)
        items = list(range(10))
        shuffled = stream.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # original untouched

    def test_integer_range(self):
        stream = RngStream(8)
        draws = {stream.integer(2, 5) for _ in range(100)}
        assert draws == {2, 3, 4}


class TestSeedSequenceRegistry:
    def test_same_name_same_stream_object(self):
        registry = SeedSequenceRegistry(0)
        assert registry.stream("net") is registry.stream("net")

    def test_different_names_independent(self):
        registry = SeedSequenceRegistry(0)
        a = registry.stream("a")
        b = registry.stream("b")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_adding_stream_does_not_perturb_existing(self):
        reg1 = SeedSequenceRegistry(42)
        first_draws = [reg1.stream("net").uniform() for _ in range(5)]

        reg2 = SeedSequenceRegistry(42)
        reg2.stream("other")  # extra consumer registered first
        second_draws = [reg2.stream("net").uniform() for _ in range(5)]
        assert first_draws == second_draws

    def test_fork_is_independent(self):
        registry = SeedSequenceRegistry(1)
        fork = registry.fork("worker")
        a = registry.stream("x")
        b = fork.stream("x")
        assert [a.uniform() for _ in range(5)] != [b.uniform() for _ in range(5)]

    def test_fork_deterministic(self):
        a = SeedSequenceRegistry(1).fork("w").stream("x").uniform()
        b = SeedSequenceRegistry(1).fork("w").stream("x").uniform()
        assert a == b

    def test_names_sorted(self):
        registry = SeedSequenceRegistry(0)
        registry.stream("zeta")
        registry.stream("alpha")
        assert list(registry.names()) == ["alpha", "zeta"]
