"""Tests for the monitoring plane: monitor routing, SLO burn-rate
alerting, and the pinned monitored scenario's acceptance properties."""

import json

import pytest

from repro.monitor import (
    AvailabilitySLO,
    BurnRateRule,
    ColdStartSLO,
    CostSLO,
    LatencySLO,
    Monitor,
    SLOEngine,
    attach_monitor,
)
from repro.monitor.monitor import KIND_FUNCTION, KIND_LINK, KIND_ZONE
from repro.sim import Simulator
from repro.testing.golden import run_monitored_scenario


class _Clock:
    def __init__(self, now=0.0):
        self.now = now


class _Span:
    """A minimal span shape for feeding the listener directly."""

    def __init__(self, category, name, start, end, **attributes):
        self.category = category
        self.name = name
        self.start = start
        self.end = end
        self.attributes = attributes

    @property
    def duration(self):
        return self.end - self.start


class TestMonitorRouting:
    def test_cloud_execute_feeds_latency_and_availability(self):
        monitor = Monitor(_Clock())
        monitor.on_span_end(
            _Span("execute", "app.f", 0.0, 2.0, tier="cloud", cold=True,
                  memory_mb=512, billed_usd=0.01)
        )
        monitor.on_span_end(
            _Span("execute", "app.f", 2.0, 3.0, tier="cloud",
                  error="SandboxReclaimedError")
        )
        latency = monitor.aggregate(KIND_FUNCTION, "app.f", "latency", 10.0, 60.0)
        assert latency.count == 2
        assert latency.bad == 1
        avail = monitor.aggregate(KIND_ZONE, "faas", "availability", 10.0, 60.0)
        assert avail.error_ratio == 0.5
        assert avail.extra("cold") == 1.0
        assert avail.extra("billed_usd") == 0.01
        # Only the successful execution enters the observed history.
        assert len(monitor.executions) == 1
        assert monitor.executions[0].function == "app.f"
        assert monitor.executions[0].cold is True

    def test_local_execute_is_ignored(self):
        monitor = Monitor(_Clock())
        monitor.on_span_end(_Span("execute", "app.f", 0.0, 1.0, tier="local"))
        assert monitor.entities() == []

    def test_transfers_feed_link_rate(self):
        monitor = Monitor(_Clock())
        monitor.on_span_end(
            _Span("upload", "ue->cloud", 0.0, 2.0, bytes=2_000_000.0,
                  radio_s=1.0)
        )
        assert monitor.link_rate("uplink", now=5.0) == pytest.approx(2e6)
        assert monitor.link_rate("downlink", now=5.0) is None

    def test_queue_depth_is_maxed(self):
        monitor = Monitor(_Clock())
        monitor.on_span_end(_Span("queue", "app.f", 0.0, 0.5, depth=2))
        monitor.on_span_end(_Span("queue", "app.f", 1.0, 1.5, depth=7))
        assert monitor.queue_depth("app.f", now=5.0) == 7.0

    def test_instants_route_to_zone_signals(self):
        monitor = Monitor(_Clock())
        monitor.on_instant(1.0, "outage_rejected", {"function": "app.f"}, None)
        monitor.on_instant(2.0, "attempt_failed", {"wasted_usd": 0.004}, None)
        monitor.on_instant(3.0, "hedge_started", {}, None)
        monitor.on_instant(4.0, "fallback_local", {}, None)
        avail = monitor.aggregate(KIND_ZONE, "faas", "availability", 10.0, 60.0)
        assert avail.bad == 1
        wasted = monitor.aggregate(KIND_ZONE, "faas", "wasted", 10.0, 60.0)
        assert wasted.extra("wasted_usd") == 0.004
        assert monitor.aggregate(KIND_ZONE, "faas", "hedges", 10.0, 60.0).count == 1
        assert monitor.aggregate(KIND_ZONE, "faas", "fallbacks", 10.0, 60.0).count == 1

    def test_stats_is_canonical_and_json_stable(self):
        def build():
            monitor = Monitor(_Clock())
            monitor.on_span_end(
                _Span("execute", "app.f", 0.0, 2.0, tier="cloud", cold=False)
            )
            monitor.on_span_end(
                _Span("upload", "ue->cloud", 0.0, 1.0, bytes=10.0, radio_s=0.5)
            )
            return json.dumps(monitor.stats(10.0), sort_keys=True)

        assert build() == build()
        stats = json.loads(build())
        assert "zone/faas/availability" in stats
        assert "link/uplink/throughput" in stats

    def test_attach_requires_recording_tracer(self):
        class Env:
            sim = Simulator()

        with pytest.raises(RuntimeError, match="disabled tracer"):
            attach_monitor(Env())


class TestSLOEngine:
    def _monitor_with_errors(self, bad_ratio, n=100, at=100.0):
        monitor = Monitor(_Clock(at))
        for i in range(n):
            attrs = {"tier": "cloud"}
            if i < bad_ratio * n:
                attrs["error"] = "X"
            monitor.on_span_end(
                _Span("execute", "app.f", at - 1.0, at, **attrs)
            )
        return monitor

    def test_fires_when_both_windows_burn(self):
        monitor = self._monitor_with_errors(0.5)
        engine = SLOEngine(
            monitor,
            [AvailabilitySLO("avail", objective=0.95)],
            rules=(BurnRateRule("r", 60.0, 300.0, 4.0, min_events=10),),
        )
        fired = engine.evaluate(100.0)
        assert [alert.slo for alert in fired] == ["avail"]
        assert engine.active_alerts()[0].severity == "page"

    def test_min_events_gates_sparse_windows(self):
        monitor = self._monitor_with_errors(1.0, n=3)
        engine = SLOEngine(
            monitor,
            [AvailabilitySLO("avail", objective=0.95)],
            rules=(BurnRateRule("r", 60.0, 300.0, 1.0, min_events=10),),
        )
        assert engine.evaluate(100.0) == []

    def test_alert_clears_when_burn_cools(self):
        monitor = self._monitor_with_errors(1.0, at=100.0)
        engine = SLOEngine(
            monitor,
            [AvailabilitySLO("avail", objective=0.95)],
            rules=(BurnRateRule("r", 60.0, 300.0, 1.0, min_events=1),),
        )
        engine.evaluate(100.0)
        assert len(engine.active_alerts()) == 1
        # Far later both windows are empty -> burn None -> clear.
        engine.evaluate(1000.0)
        assert engine.active_alerts() == []
        alert = engine.alerts[0]
        assert alert.cleared_at == 1000.0
        assert not alert.active
        log = engine.alert_log().splitlines()
        assert log[0].startswith("t=100.0 FIRING slo=avail")
        assert log[1].startswith("t=1000.0 CLEARED slo=avail")

    def test_evaluate_is_idempotent_per_instant(self):
        monitor = self._monitor_with_errors(1.0)
        engine = SLOEngine(
            monitor,
            [AvailabilitySLO("avail", objective=0.95)],
            rules=(BurnRateRule("r", 60.0, 300.0, 1.0, min_events=1),),
        )
        engine.evaluate(100.0)
        engine.evaluate(100.0)
        assert len(engine.alerts) == 1

    def test_rule_overrides_apply_per_slo(self):
        monitor = self._monitor_with_errors(1.0, n=3)
        strict = (BurnRateRule("r", 60.0, 300.0, 1.0, min_events=50),)
        lenient = (BurnRateRule("r", 60.0, 300.0, 1.0, min_events=1),)
        engine = SLOEngine(
            monitor,
            [AvailabilitySLO("avail", objective=0.95)],
            rules=strict,
            rule_overrides={"avail": lenient},
        )
        assert engine.rules_for(engine.slos[0]) == lenient
        assert [alert.slo for alert in engine.evaluate(100.0)] == ["avail"]

    def test_rule_overrides_for_unknown_slo_rejected(self):
        monitor = Monitor(_Clock())
        with pytest.raises(ValueError, match="unknown SLO"):
            SLOEngine(
                monitor,
                [AvailabilitySLO("avail")],
                rule_overrides={"nope": ()},
            )

    def test_duplicate_slo_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(
                Monitor(_Clock()),
                [AvailabilitySLO("a"), AvailabilitySLO("a")],
            )

    def test_health_reflects_severity(self):
        monitor = self._monitor_with_errors(1.0)
        engine = SLOEngine(
            monitor,
            [AvailabilitySLO("avail", objective=0.95),
             ColdStartSLO("cold", objective=0.5)],
            rules=(BurnRateRule("r", 60.0, 300.0, 1.0, min_events=1,
                                severity="ticket"),),
        )
        engine.evaluate(100.0)
        health = engine.health(100.0)
        # errors fire avail; every span is warm so cold stays ok.
        assert health["zone/faas"]["status"] == "degraded"
        assert health["zone/faas"]["active_alerts"] == ["avail/r"]

    def test_cost_slo_burn_is_spend_rate_over_budget(self):
        monitor = Monitor(_Clock(100.0))
        monitor.on_span_end(
            _Span("job", "job1", 0.0, 100.0, cloud_cost_usd=0.05)
        )
        slo = CostSLO("cost", usd_per_hour=1.0)
        agg = monitor.aggregate(KIND_ZONE, "faas", "job", 100.0, 3600.0)
        # $0.05 in one hour window = 0.05 burn of the $1/h budget.
        assert slo.burn_rate(agg) == pytest.approx(0.05)

    def test_latency_slo_validation(self):
        with pytest.raises(ValueError):
            LatencySLO("x", KIND_LINK, "uplink", threshold_s=0.0)
        with pytest.raises(ValueError):
            AvailabilitySLO("x", objective=1.0)


class TestMonitoredGoldenScenario:
    """The acceptance properties of the monitored pinned scenario."""

    @pytest.fixture(scope="class")
    def fault_free(self):
        return run_monitored_scenario(with_faults=False)

    @pytest.fixture(scope="class")
    def chaos(self):
        return run_monitored_scenario(with_faults=True)

    def test_fault_free_run_produces_zero_alerts(self, fault_free):
        assert fault_free["alert_log"] == ""
        assert fault_free["fired_slos"] == []
        statuses = {
            entry["status"] for entry in fault_free["health"].values()
        }
        assert statuses == {"ok"}

    def test_chaos_run_fires_link_outage_and_cold_start_spike(self, chaos):
        assert "link-outage" in chaos["fired_slos"]
        assert "cold-start-spike" in chaos["fired_slos"]
        log = chaos["alert_log"]
        assert "FIRING slo=link-outage" in log
        assert "FIRING slo=cold-start-spike" in log
        # The stalled upload clears once the outage window passes.
        assert "CLEARED slo=link-outage" in log

    def test_chaos_workload_still_completes(self, chaos):
        assert chaos["jobs_completed"] == 4
        assert chaos["failures"] == 0

    def test_alert_log_is_byte_identical_across_runs(self, chaos):
        again = run_monitored_scenario(with_faults=True)
        assert again["alert_log"] == chaos["alert_log"]
        assert (
            again["plane"].engine.report_json(again["sim_end_s"])
            == chaos["plane"].engine.report_json(chaos["sim_end_s"])
        )

    def test_monitoring_does_not_perturb_the_simulation(self, chaos):
        # The monitor observes the chaos schedule's run; the same
        # schedule without monitoring must land on the same clock.
        from repro.faults import inject_faults
        from repro.testing.golden import (
            GOLDEN_SEED,
            _build_golden_env,
            _run_golden_workload,
            monitoring_chaos_schedule,
        )

        env, _ = _build_golden_env(
            GOLDEN_SEED, with_faults=False, traced=False
        )
        inject_faults(env, monitoring_chaos_schedule())
        report = _run_golden_workload(env)
        assert report.jobs_completed == chaos["jobs_completed"]
        assert env.sim.now == chaos["sim_end_s"]


class TestMonitoredSweepScenario:
    def test_alert_log_byte_identical_across_worker_counts(self, tmp_path):
        from repro.sweep import SweepRunner, SweepSpec

        spec = SweepSpec(
            scenario="repro.sweep.scenarios:monitored_run",
            points=[{"faults": True}, {"faults": False}],
        )
        merged = {}
        for workers in (1, 4):
            cache = tmp_path / f"cache-{workers}"
            result = SweepRunner(
                spec, workers=workers, cache_dir=str(cache)
            ).run()
            merged[workers] = result.merged_json()
        assert merged[1] == merged[4]
        payload = json.loads(merged[1])
        assert any(
            "FIRING slo=link-outage" in json.dumps(run["result"])
            for run in payload["runs"]
        )
