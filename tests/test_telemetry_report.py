"""Tests for critical-path phase attribution and run reports."""

import pytest

from repro.telemetry import Tracer, build_report, report_from_file
from repro.telemetry.report import IDLE, attribute_job
from repro.telemetry.tracer import (
    PHASE_COLD_START,
    PHASE_EXECUTE,
    PHASE_JOB,
    PHASE_UPLOAD,
)


class FakeClock:
    def __init__(self, now: float = 0.0) -> None:
        self.now = now


def traced_job(segments, events=(), job_id="0", app="test"):
    """A tracer holding one job span of [0, end] with phase children.

    ``segments`` is a list of ``(category, start, end)``; the job span
    ends at the max segment end.
    """
    clock = FakeClock()
    tracer = Tracer(clock)
    root = tracer.start_span("job0", category=PHASE_JOB, job_id=job_id, app=app)
    end = max((e for _c, _s, e in segments), default=0.0)
    for category, seg_start, seg_end in segments:
        tracer.record_span("seg", category, seg_start, seg_end, parent=root)
    for at, name, attrs in events:
        clock.now = at
        tracer.instant(name, parent=root, **attrs)
    clock.now = end
    tracer.end_span(root)
    return tracer


class TestAttribution:
    def test_phases_partition_the_makespan_exactly(self):
        tracer = traced_job(
            [
                (PHASE_UPLOAD, 0.0, 3.0),
                (PHASE_EXECUTE, 3.0, 9.0),
                (PHASE_UPLOAD, 9.0, 10.0),
            ]
        )
        (job,) = build_report(tracer).jobs
        assert sum(job.phase_seconds.values()) == pytest.approx(job.makespan)
        assert job.phase_seconds[PHASE_UPLOAD] == pytest.approx(4.0)
        assert job.phase_seconds[PHASE_EXECUTE] == pytest.approx(6.0)

    def test_uncovered_time_is_idle(self):
        tracer = traced_job([(PHASE_EXECUTE, 2.0, 4.0), (PHASE_EXECUTE, 6.0, 8.0)])
        (job,) = build_report(tracer).jobs
        assert job.phase_seconds[IDLE] == pytest.approx(4.0)  # [0,2] + [4,6]

    def test_overhead_outranks_execution_when_overlapping(self):
        # A cold start masking execution time is charged as cold start.
        tracer = traced_job(
            [(PHASE_EXECUTE, 0.0, 10.0), (PHASE_COLD_START, 2.0, 5.0)]
        )
        (job,) = build_report(tracer).jobs
        assert job.phase_seconds[PHASE_COLD_START] == pytest.approx(3.0)
        assert job.phase_seconds[PHASE_EXECUTE] == pytest.approx(7.0)
        assert job.dominant_phase == PHASE_EXECUTE

    def test_dominant_phase_and_share(self):
        tracer = traced_job(
            [(PHASE_UPLOAD, 0.0, 7.0), (PHASE_EXECUTE, 7.0, 10.0)]
        )
        (job,) = build_report(tracer).jobs
        assert job.dominant_phase == PHASE_UPLOAD
        assert job.share(PHASE_UPLOAD) == pytest.approx(0.7)
        assert job.share("nonexistent") == 0.0

    def test_wasted_cost_aggregates_by_cause(self):
        tracer = traced_job(
            [(PHASE_EXECUTE, 0.0, 5.0)],
            events=[
                (1.0, "attempt_failed", {"cause": "Boom", "wasted_usd": 0.5}),
                (2.0, "attempt_failed", {"cause": "Boom", "wasted_usd": 0.25}),
                (3.0, "attempt_failed", {"cause": "Outage", "wasted_usd": 0.0}),
                (4.0, "hedge_started", {}),  # unrelated event, ignored
            ],
        )
        (job,) = build_report(tracer).jobs
        assert job.wasted_by_cause == {
            "Boom": (2, 0.75),
            "Outage": (1, 0.0),
        }

    def test_open_job_span_attributes_as_zero_makespan(self):
        tracer = Tracer(FakeClock())
        root = tracer.start_span("job0", category=PHASE_JOB)  # never ended
        job = attribute_job(root, [])
        assert job.makespan == 0.0
        assert job.phase_seconds == {}
        assert job.dominant_phase == IDLE


class TestRunReport:
    def test_report_sorts_jobs_and_totals(self):
        clock = FakeClock()
        tracer = Tracer(clock)
        for offset in (10.0, 0.0):  # created out of start order
            clock.now = offset
            root = tracer.start_span(
                f"job@{offset}", category=PHASE_JOB, job_id=int(offset)
            )
            tracer.record_span(
                "u", PHASE_UPLOAD, offset, offset + 2.0, parent=root
            )
            clock.now = offset + 2.0
            tracer.end_span(root)
        report = build_report(tracer)
        assert [job.job_id for job in report.jobs] == ["0", "10"]
        assert report.phase_totals() == {PHASE_UPLOAD: pytest.approx(4.0)}

    def test_render_contains_attribution_and_totals(self):
        tracer = traced_job(
            [(PHASE_UPLOAD, 0.0, 3.0), (PHASE_EXECUTE, 3.0, 5.0)],
            events=[(1.0, "attempt_failed", {"cause": "X", "wasted_usd": 1.0})],
        )
        text = build_report(tracer, metadata={"app": "test"}).render()
        assert "Per-job phase attribution" in text
        assert "Phase totals across the run" in text
        assert "Wasted cost by retry cause" in text
        assert "trace: app=test" in text

    def test_render_without_jobs(self):
        assert "(no job spans in trace)" in build_report([]).render()

    def test_report_roundtrips_through_chrome_export(self, tmp_path):
        from repro.telemetry import write_chrome_trace

        tracer = traced_job(
            [(PHASE_UPLOAD, 0.0, 3.0), (PHASE_EXECUTE, 3.0, 9.0)],
            events=[(2.0, "attempt_failed", {"cause": "Z", "wasted_usd": 0.1})],
        )
        direct = build_report(tracer)
        path = tmp_path / "trace.json"
        write_chrome_trace(path, tracer, metadata={"app": "test"})
        loaded = report_from_file(path)
        assert loaded.metadata["app"] == "test"
        (a,), (b,) = direct.jobs, loaded.jobs
        assert a.phase_seconds == pytest.approx(b.phase_seconds)
        assert a.wasted_by_cause == b.wasted_by_cause
        assert a.makespan == pytest.approx(b.makespan)
