"""Tests for jobs and job results."""

import math

import pytest

from repro.apps import Job, JobResult, photo_backup_app


@pytest.fixture
def app():
    return photo_backup_app()


class TestJob:
    def test_unique_ids(self, app):
        a, b = Job(app), Job(app)
        assert a.job_id != b.job_id

    def test_slack(self, app):
        job = Job(app, released_at=10.0, deadline=70.0)
        assert job.slack == 60.0

    def test_infinite_deadline_default(self, app):
        assert Job(app).deadline == math.inf

    def test_deadline_before_release_rejected(self, app):
        with pytest.raises(ValueError):
            Job(app, released_at=10.0, deadline=5.0)

    def test_negative_input_rejected(self, app):
        with pytest.raises(ValueError):
            Job(app, input_mb=-1.0)

    def test_component_work_scales_with_input(self, app):
        small = Job(app, input_mb=1.0)
        large = Job(app, input_mb=10.0)
        assert large.component_work("transcode") > small.component_work("transcode")

    def test_flow_bytes(self, app):
        job = Job(app, input_mb=2.0)
        assert job.flow_bytes("capture", "transcode") == pytest.approx(2e6)

    def test_total_work_matches_graph(self, app):
        job = Job(app, input_mb=3.0)
        assert job.total_work() == pytest.approx(app.total_work(3.0))

    def test_with_deadline_preserves_identity(self, app):
        job = Job(app, input_mb=2.0, released_at=5.0, deadline=100.0)
        tightened = job.with_deadline(50.0)
        assert tightened.job_id == job.job_id
        assert tightened.deadline == 50.0
        assert tightened.input_mb == 2.0


class TestJobResult:
    def make_result(self, app, finished=100.0, deadline=150.0):
        job = Job(app, released_at=10.0, deadline=deadline)
        return JobResult(
            job=job,
            started_at=20.0,
            finished_at=finished,
            ue_energy_j=5.0,
            cloud_cost_usd=0.001,
        )

    def test_timing_properties(self, app):
        result = self.make_result(app)
        assert result.makespan == pytest.approx(80.0)
        assert result.response_time == pytest.approx(90.0)

    def test_deadline_met(self, app):
        assert self.make_result(app, finished=100.0, deadline=150.0).met_deadline
        assert not self.make_result(app, finished=200.0, deadline=150.0).met_deadline

    def test_lateness_sign(self, app):
        early = self.make_result(app, finished=100.0, deadline=150.0)
        late = self.make_result(app, finished=200.0, deadline=150.0)
        assert early.lateness == pytest.approx(-50.0)
        assert late.lateness == pytest.approx(50.0)

    def test_boundary_finish_meets_deadline(self, app):
        result = self.make_result(app, finished=150.0, deadline=150.0)
        assert result.met_deadline
