"""Tests for the baseline policies and the edge runner."""

import pytest

from repro import Environment, Job, ObjectiveWeights, photo_backup_app
from repro.apps import ml_training_app
from repro.baselines import (
    EdgeEnvironment,
    EdgeJobRunner,
    MyopicLatencyPartitioner,
    RandomPartitioner,
    full_offload_controller,
    local_only_controller,
)
from repro.core.partitioning import Partition, PartitionContext
from repro.sim.rng import RngStream


def make_context(app, input_mb=2.0, uplink_bps=1.25e6):
    work = {c.name: c.work_for(input_mb) for c in app.components}
    return PartitionContext(app=app, input_mb=input_mb, work=work,
                            uplink_bps=uplink_bps)


class TestRandomPartitioner:
    def test_respects_pins(self):
        app = photo_backup_app()
        partitioner = RandomPartitioner(RngStream(0), offload_probability=1.0)
        partition = partitioner.partition(make_context(app))
        assert partition.cloud == frozenset(app.offloadable_names())

    def test_probability_zero_is_local_only(self):
        app = photo_backup_app()
        partitioner = RandomPartitioner(RngStream(0), offload_probability=0.0)
        assert partitioner.partition(make_context(app)).cloud == frozenset()

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            RandomPartitioner(RngStream(0), offload_probability=1.5)


class TestMyopicPartitioner:
    def test_offloads_heavy_components_on_fast_link(self):
        app = ml_training_app()
        partition = MyopicLatencyPartitioner().partition(
            make_context(app, uplink_bps=1.25e7)
        )
        assert "train" in partition.cloud

    def test_keeps_everything_local_on_dead_link(self):
        app = ml_training_app()
        partition = MyopicLatencyPartitioner().partition(
            make_context(app, uplink_bps=10.0)
        )
        assert partition.cloud == frozenset()

    def test_never_offloads_pinned(self):
        app = photo_backup_app()
        partition = MyopicLatencyPartitioner().partition(
            make_context(app, uplink_bps=1e9)
        )
        assert "capture" not in partition.cloud


class TestTrivialControllers:
    def test_local_only_never_invokes_cloud(self):
        env = Environment.build(seed=0)
        controller = local_only_controller(env, photo_backup_app())
        report = controller.run_workload([Job(controller.app, input_mb=2.0)])
        assert report.results[0].cloud_cost_usd == 0.0
        assert env.platform.total_cost == 0.0

    def test_full_offload_moves_all_offloadable(self):
        env = Environment.build(seed=0)
        controller = full_offload_controller(env, photo_backup_app())
        controller.plan(input_mb=2.0)
        assert controller.partition.cloud == frozenset(
            photo_backup_app().offloadable_names()
        )
        report = controller.run_workload([Job(controller.app, input_mb=2.0)])
        assert report.results[0].cloud_cost_usd > 0


class TestEdgeRunner:
    def test_job_completes(self):
        env = EdgeEnvironment.build(seed=0)
        runner = EdgeJobRunner(env, photo_backup_app())
        report = runner.run_workload([Job(runner.app, input_mb=2.0)])
        assert report.jobs_completed == 1
        result = report.results[0]
        assert result.cloud_cost_usd == 0.0  # edge bills by provisioning
        assert result.ue_energy_j > 0

    def test_dag_order_respected(self):
        env = EdgeEnvironment.build(seed=0)
        runner = EdgeJobRunner(env, photo_backup_app())
        report = runner.run_workload([Job(runner.app, input_mb=2.0)])
        finish = report.results[0].component_finish_times
        for flow in runner.app.flows:
            assert finish[flow.src] <= finish[flow.dst]

    def test_custom_partition(self):
        app = photo_backup_app()
        env = EdgeEnvironment.build(seed=0)
        runner = EdgeJobRunner(
            env, app, partition=Partition(app.name, frozenset({"transcode"}))
        )
        report = runner.run_workload([Job(app, input_mb=2.0)])
        assert report.jobs_completed == 1

    def test_foreign_job_rejected(self):
        env = EdgeEnvironment.build(seed=0)
        runner = EdgeJobRunner(env, photo_backup_app())
        with pytest.raises(ValueError):
            runner.submit(Job(ml_training_app()))

    def test_edge_latency_beats_cloud_for_interactive(self):
        """The edge's raison d'être: lower response time than cloud
        serverless for the same app and connectivity."""
        app_factory = ml_training_app
        edge_env = EdgeEnvironment.build(seed=1)
        edge = EdgeJobRunner(edge_env, app_factory())
        edge_report = edge.run_workload([Job(edge.app, input_mb=2.0)])

        cloud_env = Environment.build(seed=1)
        cloud = full_offload_controller(cloud_env, app_factory())
        cloud_report = cloud.run_workload([Job(cloud.app, input_mb=2.0)])

        assert (
            edge_report.results[0].response_time
            < cloud_report.results[0].response_time
        )

    def test_provisioned_cost_accrues_even_when_idle(self):
        env = EdgeEnvironment.build(seed=0)
        runner = EdgeJobRunner(env, photo_backup_app())
        jobs = [Job(runner.app, input_mb=1.0, released_at=3600.0)]
        runner.run_workload(jobs)
        assert env.edge.provisioned_cost() > 0.19  # ≥ 1 hour at default rate
