"""Property tests: remediated fleet runs are byte-deterministic.

The closed-loop remediation plane must not break the sharded fleet's
core guarantee — the merged document, health rollup, alert log, and
action log are byte-identical regardless of how the fleet is split
into shards or how many workers execute them.  Hypothesis drives the
chaos schedule and coupling topology; each drawn fleet is executed at
1, 2, and 4 shards (workers 1 and 2) and every artifact compared
byte for byte.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.sharded import ShardedFleetSpec, run_sharded
from repro.fleet.topology import FleetTopology


def _spec(chaos, couple, ues_per_zone, seed):
    topology = FleetTopology.uniform(
        n_zones=4,
        ues_per_zone=ues_per_zone,
        connectivity="4g",
        jobs_per_ue=1,
        couple=couple,
        seed=seed,
    )
    return ShardedFleetSpec(
        topology=topology,
        window_s=600.0,
        slack_s=1200.0,
        monitor=True,
        chaos=chaos,
        remediate=True,
    )


def _artifacts(result):
    return (
        result.merged_json(),
        result.health_json(),
        result.alert_log,
        result.action_log,
    )


class TestRemediatedFleetDeterminism:
    @settings(max_examples=4, deadline=None)
    @given(
        chaos=st.sampled_from(["uplink-outage", "uplink-degraded"]),
        couple=st.sampled_from(["pairs", "ring"]),
        ues_per_zone=st.integers(min_value=1, max_value=2),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_artifacts_byte_identical_across_shards_and_workers(
        self, chaos, couple, ues_per_zone, seed
    ):
        spec = _spec(chaos, couple, ues_per_zone, seed)
        baseline = _artifacts(run_sharded(spec, n_shards=1, workers=1))
        for n_shards, workers in ((2, 1), (2, 2), (4, 2)):
            candidate = _artifacts(
                run_sharded(spec, n_shards=n_shards, workers=workers)
            )
            assert candidate == baseline, (
                f"artifact drift at shards={n_shards} workers={workers} "
                f"for chaos={chaos} couple={couple} "
                f"ues={ues_per_zone} seed={seed}"
            )

    @settings(max_examples=3, deadline=None)
    @given(
        chaos=st.sampled_from(["uplink-outage", "uplink-degraded"]),
        seed=st.integers(min_value=0, max_value=3),
    )
    def test_remediated_chaos_runs_act_and_log_terminally(self, chaos, seed):
        result = run_sharded(_spec(chaos, "pairs", 2, seed), n_shards=2)
        health = result.health
        if chaos == "uplink-outage":
            # A hard outage trips the stall SLO; mere degradation is
            # caught by the goodput forecaster before any alert fires.
            assert health["fleet"]["alerts_fired"] >= 1
        assert health["actions"], "chaos fleet should have remediated"
        # Every firing alert reached a terminal state in the merged log.
        fired = result.alert_log.count(" FIRING ")
        cleared = result.alert_log.count(" CLEARED ")
        assert fired == cleared
        # The action log parses line by line in the canonical shape.
        for line in result.action_log.splitlines():
            assert line.startswith("t=")
            assert " ACTION kind=" in line
