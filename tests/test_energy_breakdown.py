"""Tests for per-activity energy breakdowns in job results."""

import pytest

from repro import Environment, Job, OffloadController, photo_backup_app
from repro.apps import nightly_analytics_app
from repro.baselines import EdgeEnvironment, EdgeJobRunner, local_only_controller
from repro.core.partitioning import FixedPartitioner, Partition
from repro.core.workflow_runner import WorkflowOffloadRunner


def assert_breakdown_consistent(result):
    assert result.breakdown_total() == pytest.approx(result.ue_energy_j)
    assert all(v >= 0 for v in result.energy_breakdown.values())


class TestControllerBreakdown:
    def test_sums_to_total(self):
        env = Environment.build(seed=1)
        controller = OffloadController(env, photo_backup_app())
        controller.profile_offline()
        controller.plan(input_mb=4.0)
        report = controller.run_workload(
            [Job(controller.app, input_mb=4.0, deadline=3600.0)]
        )
        result = report.results[0]
        assert_breakdown_consistent(result)
        # An offloaded run has all four activities.
        assert set(result.energy_breakdown) == {"compute", "tx", "rx", "idle"}

    def test_local_only_is_pure_compute(self):
        env = Environment.build(seed=2)
        controller = local_only_controller(env, photo_backup_app())
        report = controller.run_workload([Job(controller.app, input_mb=2.0)])
        result = report.results[0]
        assert_breakdown_consistent(result)
        assert set(result.energy_breakdown) == {"compute"}

    def test_offloaded_dominated_by_radio_not_compute(self):
        """Full offload on 3G: the radio, not the CPU, is the UE's cost."""
        env = Environment.build(seed=3, connectivity="3g")
        app = photo_backup_app()
        controller = OffloadController(
            env, app, partitioner=FixedPartitioner(Partition.full_offload(app))
        )
        controller.plan(input_mb=8.0)
        report = controller.run_workload([Job(app, input_mb=8.0)])
        breakdown = report.results[0].energy_breakdown
        assert breakdown["tx"] > breakdown["compute"]


class TestWorkflowBreakdown:
    def test_deep_sleep_key_present(self):
        env = Environment.build(seed=4)
        app = nightly_analytics_app()
        runner = WorkflowOffloadRunner(env, app, Partition.full_offload(app))
        report = runner.run_workload([Job(app, input_mb=4.0)])
        result = report.results[0]
        assert_breakdown_consistent(result)
        assert "sleep" in result.energy_breakdown
        assert "idle" not in result.energy_breakdown
        # Deep sleep is cheaper than the equivalent idle would have been.
        sleep = result.energy_breakdown["sleep"]
        model = env.ue.spec.energy
        assert sleep < model.idle_w / model.deep_sleep_w * sleep


class TestEdgeBreakdown:
    def test_sums_and_keys(self):
        env = EdgeEnvironment.build(seed=5)
        runner = EdgeJobRunner(env, photo_backup_app())
        report = runner.run_workload([Job(runner.app, input_mb=3.0)])
        result = report.results[0]
        assert_breakdown_consistent(result)
        assert {"compute", "tx", "idle"} <= set(result.energy_breakdown)
