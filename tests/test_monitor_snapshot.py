"""Serialization and merge tests for monitor snapshots.

The core claims: ``to_dict``/``from_dict`` are exact inverses for
sketches, windowed series, and whole-monitor snapshots; merging
snapshots is equivalent to having observed every event on one monitor;
and the canonical JSON of a merge is independent of how the events were
partitioned into shards.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.monitor import QuantileSketch
from repro.monitor.fleet import (
    MonitorSnapshot,
    merge_snapshots,
    restore_monitor,
)
from repro.monitor.monitor import Monitor
from repro.monitor.window import WindowedSeries
from repro.sweep import canonical_json

import pytest


class _Clock:
    def __init__(self, now=0.0):
        self.now = now


def observations(max_t=600.0):
    """Event tuples with integer-valued measurements.

    Integer-valued doubles add associatively, so splitting a stream
    across shards and merging cannot reorder ``value_sum`` into a
    different float — which matches the fleet's actual guarantee:
    shards partition whole coupling groups and the merge folds whole
    group snapshots in a fixed order, never interleaved events.
    """
    return st.lists(
        st.tuples(
            st.floats(0.0, max_t, allow_nan=False),
            st.integers(0, 50).map(float),
            st.booleans(),
        ),
        max_size=40,
    )


class TestSketchRoundTrip:
    @given(values=st.lists(st.floats(0.0, 1e6, allow_nan=False), max_size=30))
    @settings(max_examples=25)
    def test_to_from_dict_is_exact(self, values):
        sketch = QuantileSketch()
        for value in values:
            sketch.add(value)
        clone = QuantileSketch.from_dict(sketch.to_dict())
        assert clone.count == sketch.count
        assert clone.to_dict() == sketch.to_dict()
        for q in (0.0, 0.5, 0.95, 1.0):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError):
            QuantileSketch.from_dict(
                {"alpha": 0.01, "zero": 0, "buckets": {"3": -1}}
            )


class TestSeriesRoundTripAndMerge:
    @given(obs=observations())
    @settings(max_examples=25)
    def test_round_trip_preserves_aggregates(self, obs):
        series = WindowedSeries(bucket_s=10.0, horizon_s=3600.0)
        for at, value, bad in obs:
            series.observe(at, value=value, bad=bad)
        clone = WindowedSeries.from_dict(series.to_dict())
        assert clone.to_dict() == series.to_dict()
        agg_a = series.aggregate(600.0, 600.0)
        agg_b = clone.aggregate(600.0, 600.0)
        assert agg_a.count == agg_b.count
        assert agg_a.value_sum == agg_b.value_sum
        assert agg_a.quantile(0.95) == agg_b.quantile(0.95)

    @given(obs=observations())
    @settings(max_examples=25)
    def test_merge_of_split_equals_combined(self, obs):
        combined = WindowedSeries(bucket_s=10.0, horizon_s=7200.0)
        left = WindowedSeries(bucket_s=10.0, horizon_s=7200.0)
        right = WindowedSeries(bucket_s=10.0, horizon_s=7200.0)
        for i, (at, value, bad) in enumerate(obs):
            combined.observe(at, value=value, bad=bad)
            (left if i % 2 == 0 else right).observe(at, value=value, bad=bad)
        left.merge(right)
        assert left.to_dict() == combined.to_dict()

    def test_merge_rejects_mismatched_geometry(self):
        a = WindowedSeries(bucket_s=10.0)
        with pytest.raises(ValueError):
            a.merge(WindowedSeries(bucket_s=5.0))
        with pytest.raises(ValueError):
            a.merge(WindowedSeries(bucket_s=10.0, alpha=0.02))


def _populated_monitor(events, zone="z0"):
    monitor = Monitor(_Clock(), zone=zone, horizon_s=7200.0)
    for at, value, bad in events:
        monitor.series("function", "resize", "invoke").observe(
            at, value=value, bad=bad
        )
        monitor.series("zone", zone, "job").observe(at, bad=bad)
    return monitor


class TestSnapshot:
    @given(obs=observations())
    @settings(max_examples=15)
    def test_capture_restore_round_trip(self, obs):
        monitor = _populated_monitor(obs)
        snapshot = monitor.snapshot(end_s=600.0)
        clone = MonitorSnapshot.from_dict(snapshot.to_dict())
        assert clone.to_dict() == snapshot.to_dict()
        restored = restore_monitor(snapshot)
        assert restored.zone == monitor.zone
        assert restored.snapshot(end_s=600.0).to_dict() == snapshot.to_dict()

    def test_capture_is_a_deep_copy(self):
        monitor = _populated_monitor([(5.0, 1.0, False)])
        snapshot = monitor.snapshot(end_s=10.0)
        before = canonical_json(snapshot.to_dict())
        monitor.series("function", "resize", "invoke").observe(7.0, value=2.0)
        assert canonical_json(snapshot.to_dict()) == before

    def test_from_dict_rejects_wrong_schema(self):
        with pytest.raises(ValueError):
            MonitorSnapshot.from_dict({"schema": "bogus/9"})

    @given(obs=observations(), n_shards=st.sampled_from([1, 2, 4]))
    @settings(max_examples=15)
    def test_sharded_merge_matches_single_monitor(self, obs, n_shards):
        whole = _populated_monitor(obs).snapshot(end_s=600.0)
        shards = [
            _populated_monitor(obs[i::n_shards]) for i in range(n_shards)
        ]
        merged = merge_snapshots(
            [m.snapshot(end_s=600.0) for m in shards], zone="z0"
        )
        assert canonical_json(merged.to_dict()) == canonical_json(
            whole.to_dict()
        )

    def test_merge_order_independent(self):
        a = _populated_monitor([(1.0, 1.0, False)], zone="za").snapshot(10.0)
        b = _populated_monitor([(2.0, 2.0, True)], zone="zb").snapshot(10.0)
        ab = merge_snapshots([a, b])
        ba = merge_snapshots([b, a])
        assert canonical_json(ab.to_dict()) == canonical_json(ba.to_dict())

    def test_empty_merge_is_an_empty_snapshot(self):
        merged = merge_snapshots([])
        assert merged.total_events == 0
        json.loads(canonical_json(merged.to_dict()))  # serializable

    def test_merge_rejects_mismatched_geometry(self):
        a = Monitor(_Clock(), bucket_s=10.0).snapshot(end_s=0.0)
        b = Monitor(_Clock(), bucket_s=5.0).snapshot(end_s=0.0)
        with pytest.raises(ValueError):
            merge_snapshots([a, b])
