"""Tests for the deterministic quantile sketch."""

import math

import pytest

from repro.monitor import QuantileSketch


class TestAdd:
    def test_rejects_non_finite(self):
        sketch = QuantileSketch()
        for bad in (math.nan, math.inf, -math.inf):
            with pytest.raises(ValueError):
                sketch.add(bad)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            QuantileSketch().add(-0.1)

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            QuantileSketch().add(1.0, count=-1)

    def test_zero_count_is_a_noop(self):
        sketch = QuantileSketch()
        sketch.add(1.0, count=0)
        assert sketch.count == 0

    def test_zero_and_tiny_values_share_the_zero_bucket(self):
        sketch = QuantileSketch()
        sketch.add(0.0)
        sketch.add(1e-12)
        assert sketch.count == 2
        assert sketch.quantile(0.5) == 0.0


class TestQuantiles:
    def test_empty_sketch_returns_none(self):
        assert QuantileSketch().quantile(0.5) is None

    def test_invalid_q_rejected(self):
        sketch = QuantileSketch()
        sketch.add(1.0)
        for bad in (-0.1, 1.1):
            with pytest.raises(ValueError):
                sketch.quantile(bad)

    def test_relative_accuracy_bound(self):
        # The DDSketch guarantee: every quantile answer is within the
        # configured relative accuracy of a true sample value.
        alpha = 0.01
        sketch = QuantileSketch(alpha)
        values = [0.1 * i for i in range(1, 101)]  # 0.1 .. 10.0
        for value in values:
            sketch.add(value)
        for q in (0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0):
            answer = sketch.quantile(q)
            rank = min(len(values) - 1, int(q * len(values)))
            truth = sorted(values)[rank]
            assert abs(answer - truth) <= alpha * truth + 0.1, (q, answer, truth)

    def test_single_value(self):
        sketch = QuantileSketch(0.01)
        sketch.add(5.0)
        assert sketch.quantile(0.0) == pytest.approx(5.0, rel=0.01)
        assert sketch.quantile(1.0) == pytest.approx(5.0, rel=0.01)


class TestCountAtMost:
    def test_exact_at_threshold(self):
        sketch = QuantileSketch(0.01)
        for i in range(1, 101):
            sketch.add(float(i))
        at_most = sketch.count_at_most(50.0)
        assert abs(at_most - 50) <= 2

    def test_zero_bucket_counts(self):
        sketch = QuantileSketch()
        sketch.add(0.0, count=3)
        sketch.add(100.0)
        assert sketch.count_at_most(1.0) == 3

    def test_threshold_below_everything(self):
        sketch = QuantileSketch()
        sketch.add(10.0)
        assert sketch.count_at_most(1e-12) == 0


class TestMerge:
    def test_merge_matches_union(self):
        a, b, union = QuantileSketch(0.01), QuantileSketch(0.01), QuantileSketch(0.01)
        for i in range(1, 51):
            a.add(float(i))
            union.add(float(i))
        for i in range(51, 101):
            b.add(float(i))
            union.add(float(i))
        a.merge(b)
        assert a.count == union.count
        for q in (0.1, 0.5, 0.9):
            assert a.quantile(q) == union.quantile(q)

    def test_merge_alpha_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QuantileSketch(0.01).merge(QuantileSketch(0.02))

    def test_copy_is_independent(self):
        a = QuantileSketch()
        a.add(1.0)
        b = a.copy()
        b.add(100.0)
        assert a.count == 1
        assert b.count == 2

    def test_merged_classmethod(self):
        a, b = QuantileSketch(), QuantileSketch()
        a.add(1.0)
        b.add(2.0)
        merged = QuantileSketch.merged([a, b])
        assert merged.count == 2
        assert a.count == 1  # inputs untouched


class TestDeterminism:
    def test_same_stream_same_answers(self):
        def build():
            sketch = QuantileSketch(0.02)
            for i in range(1, 1000):
                sketch.add(0.001 * i * i)
            return sketch

        a, b = build(), build()
        for q in (0.01, 0.5, 0.99):
            assert a.quantile(q) == b.quantile(q)  # bit-equal, not approx
