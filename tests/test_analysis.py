"""Tests for the analysis calculators."""

import math

import pytest

from repro import Environment, Job, ObjectiveWeights, OffloadController, photo_backup_app
from repro.analysis import (
    compare_reports,
    crossover_bandwidth,
    edge_breakeven_rate,
    energy_summary,
    savings_table,
)
from repro.apps import ml_training_app
from repro.baselines import local_only_controller
from repro.core.partitioning import Partition, PartitionContext, evaluate_partition
from repro.edge.node import EdgeNodeSpec


class TestCrossoverBandwidth:
    def test_photo_backup_crossover_in_single_digit_mbit(self):
        """Benchmark F1 measured the crossover between 2 and 5 Mbit/s;
        the analytic calculator must land in the same range."""
        crossover = crossover_bandwidth(photo_backup_app(), input_mb=4.0)
        assert crossover is not None
        mbit = crossover * 8 / 1e6
        assert 0.5 < mbit < 8.0

    def test_crossover_is_actually_break_even(self):
        app = photo_backup_app()
        crossover = crossover_bandwidth(app, input_mb=4.0)
        work = {c.name: c.work_for(4.0) for c in app.components}
        ctx = PartitionContext(
            app=app, input_mb=4.0, work=work,
            uplink_bps=crossover, downlink_bps=crossover * 4,
        )
        local = evaluate_partition(ctx, Partition.local_only(app)).objective
        full = evaluate_partition(ctx, Partition.full_offload(app)).objective
        assert full == pytest.approx(local, rel=0.02)

    def test_compute_heavy_app_has_no_crossover_above_floor(self):
        """ML training wins offloaded even on very low bandwidth when
        latency hardly matters — no crossover in a high range."""
        crossover = crossover_bandwidth(
            ml_training_app(),
            input_mb=2.0,
            weights=ObjectiveWeights.non_time_critical(),
            lo_bps=5e4,
        )
        assert crossover is None

    def test_crossover_monotone_in_device_speed(self):
        """A faster device pushes the crossover to higher bandwidth."""
        slow = crossover_bandwidth(
            photo_backup_app(), input_mb=4.0, ue_cycles_per_second=0.6e9
        )
        fast = crossover_bandwidth(
            photo_backup_app(), input_mb=4.0, ue_cycles_per_second=2.4e9
        )
        assert slow is not None and fast is not None
        assert fast > slow


class TestEdgeBreakeven:
    def test_matches_f5b_shape(self):
        """F5b showed serverless cheaper even at 128 jobs/h for analytics;
        the analytic breakeven must therefore sit above 128/h."""
        from repro.apps import nightly_analytics_app

        rate = edge_breakeven_rate(nightly_analytics_app(), input_mb=6.0)
        assert rate > 128.0

    def test_cheaper_edge_lowers_breakeven(self):
        app = photo_backup_app()
        expensive = edge_breakeven_rate(
            app, edge_spec=EdgeNodeSpec(hourly_cost_usd=1.0)
        )
        cheap = edge_breakeven_rate(
            app, edge_spec=EdgeNodeSpec(hourly_cost_usd=0.01)
        )
        assert cheap < expensive

    def test_no_offloadable_work_is_infinite(self):
        from repro.apps import AppGraph, Component

        app = AppGraph("pinned", [Component("only", offloadable=False)])
        assert math.isinf(edge_breakeven_rate(app))


def run_pair():
    def run(factory):
        env = Environment.build(seed=9)
        controller = factory(env)
        if controller.partition is None:
            controller.profile_offline()
            controller.plan(input_mb=4.0)
        jobs = [
            Job(controller.app, input_mb=4.0, released_at=60.0 * i,
                deadline=60.0 * i + 3600.0)
            for i in range(3)
        ]
        return controller.run_workload(jobs)

    local = run(lambda env: local_only_controller(env, photo_backup_app()))
    optimised = run(lambda env: OffloadController(env, photo_backup_app()))
    return local, optimised


class TestReportComparison:
    def test_compare_reports_signs(self):
        local, optimised = run_pair()
        deltas = compare_reports(local, optimised)
        assert deltas["energy"] < 0  # optimised saves energy
        assert deltas["cost"] == math.inf  # local cost is zero
        assert deltas["miss_delta"] == 0.0

    def test_energy_summary_matches_totals(self):
        _local, optimised = run_pair()
        summary = energy_summary(optimised)
        assert sum(summary.values()) == pytest.approx(
            optimised.total_ue_energy_j
        )
        assert "tx" in summary

    def test_savings_table(self):
        local, optimised = run_pair()
        table = savings_table(
            {"local": local, "optimised": optimised}, baseline="local"
        )
        assert len(table.rows) == 2
        rendered = table.render()
        assert "(baseline)" in rendered
        with pytest.raises(KeyError):
            savings_table({"a": local}, baseline="missing")
