"""Tests for bandwidth traces and exact transfer-time integration."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.rng import RngStream
from repro.traces import (
    ConstantBandwidth,
    DiurnalBandwidth,
    MarkovBandwidth,
    StepBandwidth,
)


class TestConstantBandwidth:
    def test_rate_everywhere(self):
        trace = ConstantBandwidth(1000.0)
        assert trace.rate_at(0.0) == 1000.0
        assert trace.rate_at(1e9) == 1000.0
        assert trace.next_change_after(5.0) == math.inf

    def test_transfer_time_linear(self):
        trace = ConstantBandwidth(100.0)
        assert trace.transfer_time(0.0, 250.0) == pytest.approx(2.5)

    def test_zero_bytes_instant(self):
        assert ConstantBandwidth(10.0).transfer_time(3.0, 0.0) == 0.0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(0.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            ConstantBandwidth(10.0).transfer_time(0.0, -1.0)


class TestStepBandwidth:
    def test_steps_select_rate(self):
        trace = StepBandwidth([(0.0, 100.0), (10.0, 50.0)])
        assert trace.rate_at(5.0) == 100.0
        assert trace.rate_at(10.0) == 50.0
        assert trace.rate_at(99.0) == 50.0

    def test_next_change(self):
        trace = StepBandwidth([(0.0, 100.0), (10.0, 50.0)])
        assert trace.next_change_after(3.0) == 10.0
        assert trace.next_change_after(10.0) == math.inf

    def test_transfer_spanning_steps_is_exact(self):
        # 100 B/s for 10 s = 1000 B, then 50 B/s. 1500 B total:
        # 1000 B in the first 10 s, remaining 500 B at 50 B/s = 10 s more.
        trace = StepBandwidth([(0.0, 100.0), (10.0, 50.0)])
        assert trace.transfer_time(0.0, 1500.0) == pytest.approx(20.0)

    def test_transfer_through_outage(self):
        trace = StepBandwidth([(0.0, 100.0), (5.0, 0.0), (15.0, 100.0)])
        # 500 B in 5 s, 10 s outage, 500 B in 5 s more -> 20 s.
        assert trace.transfer_time(0.0, 1000.0) == pytest.approx(20.0)

    def test_permanent_outage_raises(self):
        trace = StepBandwidth([(0.0, 0.0)])
        with pytest.raises(RuntimeError):
            trace.transfer_time(0.0, 1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            StepBandwidth([])
        with pytest.raises(ValueError):
            StepBandwidth([(1.0, 10.0)])  # must start at/before 0
        with pytest.raises(ValueError):
            StepBandwidth([(0.0, 10.0), (0.0, 20.0)])  # not increasing
        with pytest.raises(ValueError):
            StepBandwidth([(0.0, -5.0)])

    @given(
        nbytes=st.floats(min_value=0.0, max_value=1e6),
        start=st.floats(min_value=0.0, max_value=50.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_transfer_time_consistency(self, nbytes, start):
        """Moving the full payload takes at least nbytes/peak_rate."""
        trace = StepBandwidth([(0.0, 200.0), (20.0, 50.0), (60.0, 400.0)])
        elapsed = trace.transfer_time(start, nbytes)
        assert elapsed >= nbytes / 400.0 - 1e-9

    @given(
        split=st.floats(min_value=0.0, max_value=1.0),
        nbytes=st.floats(min_value=1.0, max_value=1e5),
    )
    @settings(max_examples=50, deadline=None)
    def test_transfer_time_additive(self, split, nbytes):
        """Transferring A then B back-to-back equals transferring A+B."""
        trace = StepBandwidth([(0.0, 200.0), (13.0, 37.0), (40.0, 500.0)])
        first = nbytes * split
        second = nbytes - first
        t_first = trace.transfer_time(0.0, first)
        t_second = trace.transfer_time(t_first, second)
        t_whole = trace.transfer_time(0.0, nbytes)
        assert t_first + t_second == pytest.approx(t_whole, rel=1e-9, abs=1e-9)


class TestMarkovBandwidth:
    def test_starts_good(self):
        trace = MarkovBandwidth(100.0, 10.0, 50.0, 5.0, RngStream(1))
        assert trace.rate_at(0.0) == 100.0

    def test_alternates_states(self):
        trace = MarkovBandwidth(100.0, 10.0, 5.0, 5.0, RngStream(2))
        rates = {trace.rate_at(t) for t in range(0, 200)}
        assert rates == {100.0, 10.0}

    def test_queries_consistent(self):
        trace = MarkovBandwidth(100.0, 10.0, 5.0, 5.0, RngStream(3))
        first = [trace.rate_at(t) for t in range(50)]
        second = [trace.rate_at(t) for t in range(50)]
        assert first == second

    def test_next_change_is_boundary(self):
        trace = MarkovBandwidth(100.0, 10.0, 5.0, 5.0, RngStream(4))
        boundary = trace.next_change_after(0.0)
        assert trace.rate_at(boundary - 1e-6) != trace.rate_at(boundary + 1e-6)

    def test_validation(self):
        rng = RngStream(0)
        with pytest.raises(ValueError):
            MarkovBandwidth(0.0, 1.0, 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            MarkovBandwidth(1.0, -1.0, 1.0, 1.0, rng)
        with pytest.raises(ValueError):
            MarkovBandwidth(1.0, 1.0, 0.0, 1.0, rng)

    def test_transfer_across_states(self):
        trace = MarkovBandwidth(100.0, 1.0, 10.0, 10.0, RngStream(5))
        elapsed = trace.transfer_time(0.0, 5000.0)
        assert elapsed >= 50.0  # at least nbytes / good_rate


class TestDiurnalBandwidth:
    def test_piecewise_constant_within_slot(self):
        trace = DiurnalBandwidth(100.0, 0.5, period=1000.0, slot=10.0)
        assert trace.rate_at(3.0) == trace.rate_at(9.999)

    def test_changes_at_slot_boundary(self):
        trace = DiurnalBandwidth(100.0, 0.5, period=40.0, slot=10.0)
        assert trace.next_change_after(3.0) == 10.0

    def test_oscillates_around_base(self):
        trace = DiurnalBandwidth(100.0, 0.5, period=100.0, slot=1.0)
        rates = [trace.rate_at(t) for t in range(100)]
        assert max(rates) > 130.0
        assert min(rates) < 70.0
        assert min(rates) > 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DiurnalBandwidth(0.0, 0.5)
        with pytest.raises(ValueError):
            DiurnalBandwidth(10.0, 1.0)
        with pytest.raises(ValueError):
            DiurnalBandwidth(10.0, 0.5, slot=0.0)
