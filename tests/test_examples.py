"""Regression tests: every example script must run clean.

Examples are documentation that executes; breaking one silently is how
quickstarts rot.  Each script runs in a subprocess with a generous
timeout and must exit 0 with its headline output present.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", "Completed 10 jobs"),
    ("photo_backup.py", "Overnight photo backup"),
    ("nightly_analytics.py", "cost-window"),
    ("cicd_pipeline.py", "PROMOTED"),
    ("fleet_nightly.py", "Fleet run"),
    ("low_battery_day.py", "frugal"),
]


@pytest.mark.parametrize("script,expected", CASES)
def test_example_runs_clean(script, expected):
    path = EXAMPLES_DIR / script
    assert path.exists(), f"missing example {script}"
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert expected in completed.stdout, (
        f"{script} output missing {expected!r}:\n{completed.stdout[-2000:]}"
    )


def test_all_examples_covered():
    """Every script in examples/ has a regression case above."""
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    covered = {script for script, _ in CASES}
    assert scripts == covered, scripts.symmetric_difference(covered)
