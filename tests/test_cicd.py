"""Tests for the CI/CD substrate (repo, build, artifacts, deploy)."""

import pytest

from repro.apps import nightly_analytics_app, photo_backup_app
from repro.apps.graph import Component
from repro.cicd import (
    Artifact,
    ArtifactRegistry,
    BuildSystem,
    DeploymentTarget,
    SourceRepository,
)
from repro.serverless import FunctionSpec, PlatformConfig, ServerlessPlatform
from repro.sim import Simulator


@pytest.fixture
def sim():
    return Simulator()


class TestSourceRepository:
    def test_initial_commit_is_head(self):
        repo = SourceRepository("r", photo_backup_app())
        assert len(repo) == 1
        assert repo.head.message == "initial"
        assert repo.head.parent is None

    def test_commit_chain(self):
        app = photo_backup_app()
        repo = SourceRepository("r", app)
        first = repo.head
        changed = app.with_component(Component("transcode", work_gcycles=99.0))
        second = repo.commit(changed, "tune transcode")
        assert repo.head is second
        assert second.parent == first.revision
        assert len(repo) == 2

    def test_identical_content_same_revision(self):
        app = photo_backup_app()
        repo = SourceRepository("r", app)
        again = repo.commit(app, "initial")
        assert again.revision == repo.log()[0].revision
        assert len(repo) == 1

    def test_checkout(self):
        repo = SourceRepository("r", photo_backup_app())
        assert repo.checkout(repo.head.revision) is repo.head
        with pytest.raises(KeyError):
            repo.checkout("deadbeef")

    def test_different_content_different_revision(self):
        app = photo_backup_app()
        repo = SourceRepository("r", app)
        changed = app.with_component(Component("transcode", work_gcycles=1.0))
        assert repo.commit(changed, "x").revision != repo.log()[0].revision


class TestArtifactRegistry:
    def test_push_pull_roundtrip(self):
        registry = ArtifactRegistry()
        artifact = Artifact.build("app", "comp", "rev1", 10.0)
        registry.push(artifact)
        assert registry.pull("app", "comp", "rev1") == artifact
        assert registry.has("app", "comp", "rev1")
        assert len(registry) == 1

    def test_idempotent_push(self):
        registry = ArtifactRegistry()
        artifact = Artifact.build("app", "comp", "rev1", 10.0)
        registry.push(artifact)
        registry.push(artifact)
        assert len(registry) == 1
        assert registry.pushes == 2

    def test_digest_conflict_rejected(self):
        registry = ArtifactRegistry()
        registry.push(Artifact.build("app", "comp", "rev1", 10.0))
        with pytest.raises(ValueError):
            registry.push(Artifact.build("app", "comp", "rev1", 20.0))

    def test_missing_pull_rejected(self):
        with pytest.raises(KeyError):
            ArtifactRegistry().pull("a", "b", "c")

    def test_list_revision_sorted(self):
        registry = ArtifactRegistry()
        for component in ("zeta", "alpha"):
            registry.push(Artifact.build("app", component, "rev1", 1.0))
        names = [a.component for a in registry.list_revision("app", "rev1")]
        assert names == ["alpha", "zeta"]

    def test_negative_package_rejected(self):
        with pytest.raises(ValueError):
            Artifact.build("a", "c", "r", -1.0)


class TestBuildSystem:
    def test_build_produces_all_artifacts(self, sim):
        repo = SourceRepository("r", nightly_analytics_app())
        registry = ArtifactRegistry()
        builder = BuildSystem(sim, registry)
        artifacts = sim.run(until=builder.build(repo.head))
        assert len(artifacts) == len(repo.head.app)
        assert len(registry) == len(artifacts)

    def test_build_charges_time(self, sim):
        repo = SourceRepository("r", nightly_analytics_app())
        builder = BuildSystem(sim, ArtifactRegistry(), fixed_s=30.0, per_mb_s=1.0)
        sim.run(until=builder.build(repo.head))
        expected = 30.0 + sum(c.package_mb for c in repo.head.app.components)
        assert sim.now == pytest.approx(expected)

    def test_incremental_rebuild_is_fast(self, sim):
        repo = SourceRepository("r", nightly_analytics_app())
        builder = BuildSystem(sim, ArtifactRegistry(), fixed_s=30.0, per_mb_s=1.0)
        sim.run(until=builder.build(repo.head))
        first_duration = sim.now
        sim.run(until=builder.build(repo.head))
        assert sim.now - first_duration < first_duration * 0.2

    def test_estimate(self, sim):
        repo = SourceRepository("r", nightly_analytics_app())
        builder = BuildSystem(sim, ArtifactRegistry(), fixed_s=30.0, per_mb_s=1.0)
        assert builder.estimate_build_time(repo.head) > 30.0

    def test_validation(self, sim):
        with pytest.raises(ValueError):
            BuildSystem(sim, ArtifactRegistry(), fixed_s=-1.0)


class TestDeploymentTarget:
    def make_stack(self, sim):
        platform = ServerlessPlatform(sim, PlatformConfig())
        target = DeploymentTarget(sim, platform, fixed_s=5.0, per_mb_s=0.1)
        repo = SourceRepository("r", nightly_analytics_app())
        registry = ArtifactRegistry()
        builder = BuildSystem(sim, registry)
        artifacts = sim.run(until=builder.build(repo.head))
        return platform, target, repo, artifacts

    def test_deploys_only_planned_components(self, sim):
        platform, target, repo, artifacts = self.make_stack(sim)
        plan = {"aggregate": 2048.0, "report": 1024.0}
        names = sim.run(
            until=target.deploy_revision(repo.head.revision, artifacts, plan)
        )
        assert sorted(names) == [
            "nightly_analytics.aggregate",
            "nightly_analytics.report",
        ]
        assert platform.is_deployed("nightly_analytics.aggregate")
        assert not platform.is_deployed("nightly_analytics.parse")
        assert platform.spec("nightly_analytics.aggregate").memory_mb == 2048.0

    def test_redeploy_unchanged_is_free(self, sim):
        platform, target, repo, artifacts = self.make_stack(sim)
        plan = {"aggregate": 2048.0}
        sim.run(until=target.deploy_revision(repo.head.revision, artifacts, plan))
        before = sim.now
        sim.run(until=target.deploy_revision(repo.head.revision, artifacts, plan))
        assert sim.now == before  # spec unchanged: no deploy time charged

    def test_rollback_restores_previous_functions(self, sim):
        platform, target, repo, artifacts = self.make_stack(sim)
        rev1 = repo.head.revision
        sim.run(
            until=target.deploy_revision(rev1, artifacts, {"aggregate": 2048.0})
        )
        # A second revision resizes the function.
        changed = repo.head.app.with_component(
            Component("aggregate", work_gcycles=99.0, package_mb=80)
        )
        commit2 = repo.commit(changed, "resize")
        builder = BuildSystem(sim, ArtifactRegistry())
        artifacts2 = sim.run(until=builder.build(commit2))
        sim.run(
            until=target.deploy_revision(
                commit2.revision, artifacts2, {"aggregate": 4096.0}
            )
        )
        assert platform.spec("nightly_analytics.aggregate").memory_mb == 4096.0
        sim.run(until=target.rollback(rev1))
        assert platform.spec("nightly_analytics.aggregate").memory_mb == 2048.0

    def test_rollback_unknown_revision_rejected(self, sim):
        _platform, target, _repo, _artifacts = self.make_stack(sim)
        with pytest.raises(KeyError):
            target.rollback("nope")

    def test_namespace_prefix(self, sim):
        platform = ServerlessPlatform(sim, PlatformConfig())
        target = DeploymentTarget(sim, platform, namespace="canary.")
        artifact = Artifact.build("app", "comp", "rev", 1.0)
        assert target.function_name(artifact) == "canary.app.comp"
