"""Tests for ASCII charts."""

import pytest

from repro.metrics import ascii_bars, ascii_line


class TestAsciiBars:
    def test_basic_render(self):
        out = ascii_bars(["a", "bb"], [10.0, 5.0], width=10)
        lines = out.split("\n")
        assert len(lines) == 2
        assert lines[0].startswith(" a |")
        assert "10" in lines[0]
        # The max bar fills the width; the half bar is half of it.
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_title_and_unit(self):
        out = ascii_bars(["x"], [1.0], title="T", unit=" J")
        assert out.startswith("T\n")
        assert out.endswith("1 J")

    def test_zero_values_render_empty(self):
        out = ascii_bars(["a", "b"], [0.0, 0.0], width=8)
        assert "█" not in out

    def test_half_block_rounding(self):
        out = ascii_bars(["a", "b"], [10.0, 7.5], width=10)
        assert "▌" in out.split("\n")[1]

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0, 2.0])
        with pytest.raises(ValueError):
            ascii_bars([], [])
        with pytest.raises(ValueError):
            ascii_bars(["a"], [1.0], width=2)


class TestAsciiLine:
    def test_grid_shape(self):
        out = ascii_line([0, 1, 2], [0.0, 5.0, 10.0], width=20, height=5)
        lines = out.split("\n")
        assert len(lines) == 5 + 2  # grid + axis + x labels
        assert all("|" in line for line in lines[:5])

    def test_extremes_labelled(self):
        out = ascii_line([0, 1], [3.0, 9.0], width=10, height=4)
        assert "9" in out.split("\n")[0]
        assert "3" in out.split("\n")[3]

    def test_monotone_series_descends_visually(self):
        out = ascii_line([0, 1, 2, 3], [10.0, 7.0, 4.0, 1.0], width=16, height=8)
        lines = out.split("\n")
        first_dot_rows = []
        for col in range(len(lines[0])):
            for row, line in enumerate(lines[:8]):
                if col < len(line) and line[col] == "•":
                    first_dot_rows.append(row)
                    break
        assert first_dot_rows == sorted(first_dot_rows)

    def test_log_x(self):
        out = ascii_line([1, 10, 100], [1.0, 2.0, 3.0], log_x=True,
                         width=21, height=3)
        # Log spacing puts the middle point mid-grid.
        dot_cols = [line.index("•") for line in out.split("\n")[:3] if "•" in line]
        assert any(7 <= c - out.split("\n")[0].index("|") <= 15 for c in dot_cols)

    def test_flat_series(self):
        out = ascii_line([0, 1], [5.0, 5.0], width=10, height=3)
        assert "•" in out

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_line([1], [1.0])
        with pytest.raises(ValueError):
            ascii_line([1, 2], [1.0])
        with pytest.raises(ValueError):
            ascii_line([0, 1], [1.0, 2.0], log_x=True)
        with pytest.raises(ValueError):
            ascii_line([1, 2], [1.0, 2.0], width=4)
