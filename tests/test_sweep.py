"""Tests for the parallel sweep subsystem (`repro.sweep`)."""

import json
import os

import pytest

from repro.sweep import (
    SweepRunner,
    SweepSpec,
    canonical_json,
    config_hash,
    config_key,
    resolve_scenario,
    run_sweep,
    scenario_ref,
)

KERNEL_SMOKE = "repro.sweep.scenarios:kernel_smoke"


def double(config):
    """A trivial local scenario for in-process runner tests."""
    return {"doubled": config["x"] * 2, "tag": config.get("tag", "none")}


class TestCanonicalisation:
    def test_canonical_json_is_insertion_order_free(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})

    def test_canonical_json_rejects_nan(self):
        with pytest.raises(ValueError):
            canonical_json({"x": float("nan")})

    def test_config_key_round_trips(self):
        config = {"b": [1, 2], "a": {"nested": True}}
        assert json.loads(config_key(config)) == config

    def test_config_hash_depends_on_scenario_and_config(self):
        h = config_hash("m:f", {"x": 1})
        assert h == config_hash("m:f", {"x": 1})
        assert h != config_hash("m:g", {"x": 1})
        assert h != config_hash("m:f", {"x": 2})

    def test_scenario_ref_of_callable(self):
        assert scenario_ref(double) == f"{double.__module__}:double"

    def test_scenario_ref_rejects_bare_names(self):
        with pytest.raises(ValueError, match="module.*function"):
            scenario_ref("no_colon_here")

    def test_resolve_scenario_imports_by_name(self):
        fn = resolve_scenario(KERNEL_SMOKE)
        assert callable(fn)

    def test_resolve_scenario_missing_attribute(self):
        with pytest.raises(ValueError, match="no attribute"):
            resolve_scenario("repro.sweep.scenarios:nope")


class TestSweepSpec:
    def test_grid_expands_in_sorted_axis_order(self):
        spec = SweepSpec(
            scenario="m:f", grid={"b": [10, 20], "a": ["x", "y"]}
        )
        configs = spec.expand()
        assert configs == [
            {"a": "x", "b": 10},
            {"a": "x", "b": 20},
            {"a": "y", "b": 10},
            {"a": "y", "b": 20},
        ]

    def test_seeds_replicate_every_point(self):
        spec = SweepSpec(scenario="m:f", grid={"a": [1]}, seeds=3)
        assert spec.expand() == [
            {"a": 1, "seed": 0}, {"a": 1, "seed": 1}, {"a": 1, "seed": 2}
        ]

    def test_base_merges_under_points_and_grid(self):
        spec = SweepSpec(
            scenario="m:f", base={"shared": 1, "a": 0},
            points=[{"explicit": True}], grid={"a": [5]},
        )
        assert spec.expand() == [
            {"shared": 1, "a": 0, "explicit": True},
            {"shared": 1, "a": 5},
        ]

    def test_duplicate_configs_collapse(self):
        spec = SweepSpec(
            scenario="m:f", points=[{"a": 1}, {"a": 1}], grid={"a": [1, 2]}
        )
        assert spec.expand() == [{"a": 1}, {"a": 2}]

    def test_rejects_bad_seeds_and_scalar_axes(self):
        with pytest.raises(ValueError):
            SweepSpec(scenario="m:f", seeds=0)
        with pytest.raises(TypeError):
            SweepSpec(scenario="m:f", grid={"a": 5})
        with pytest.raises(TypeError):
            SweepSpec(scenario="m:f", grid={"a": "abc"})

    def test_dict_and_file_round_trip(self, tmp_path):
        spec = SweepSpec(
            scenario="m:f", base={"b": 1}, grid={"a": [1, 2]}, seeds=2
        )
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        loaded = SweepSpec.from_file(path)
        assert loaded.expand() == spec.expand()
        assert loaded.scenario_name == "m:f"


class TestSweepRunner:
    def test_serial_run_with_local_callable(self):
        spec = SweepSpec(scenario=double, grid={"x": [1, 2, 3]})
        result = SweepRunner(spec).run()
        assert [r["doubled"] for r in result.results_for(spec.expand())] == [
            2, 4, 6
        ]

    def test_entries_ordered_by_canonical_key(self):
        spec = SweepSpec(scenario=double, points=[{"x": 9}, {"x": 1}])
        result = SweepRunner(spec).run()
        assert [entry.key for entry in result] == sorted(
            entry.key for entry in result
        )

    def test_results_for_preserves_presentation_order(self):
        configs = [{"x": 9}, {"x": 1}, {"x": 5}]
        spec = SweepSpec(scenario=double, points=configs)
        result = SweepRunner(spec).run()
        assert [r["doubled"] for r in result.results_for(configs)] == [18, 2, 10]

    def test_merged_json_byte_identical_across_worker_counts(self):
        spec = SweepSpec(
            scenario=KERNEL_SMOKE,
            grid={"processes": [2, 5, 8], "interrupt_every": [2, 3]},
        )
        serial = SweepRunner(spec, workers=1).run()
        parallel = SweepRunner(spec, workers=2).run()
        assert serial.merged_json() == parallel.merged_json()

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            SweepRunner(SweepSpec(scenario=double), workers=0)

    def test_run_sweep_convenience(self):
        result = run_sweep(SweepSpec(scenario=double, grid={"x": [4]}))
        assert result.result_for({"x": 4})["doubled"] == 8


class TestSweepCache:
    def test_second_run_is_all_cache_hits_and_byte_identical(self, tmp_path):
        spec = SweepSpec(scenario=double, grid={"x": [1, 2, 3, 4]})
        first = SweepRunner(spec, cache_dir=tmp_path).run()
        second = SweepRunner(spec, cache_dir=tmp_path).run()
        assert (first.executed, first.cached) == (4, 0)
        assert (second.executed, second.cached) == (0, 4)
        assert first.merged_json() == second.merged_json()

    def test_grown_grid_executes_only_the_delta(self, tmp_path):
        SweepRunner(
            SweepSpec(scenario=double, grid={"x": [1, 2]}), cache_dir=tmp_path
        ).run()
        grown = SweepRunner(
            SweepSpec(scenario=double, grid={"x": [1, 2, 3]}),
            cache_dir=tmp_path,
        ).run()
        assert grown.executed == 1
        assert grown.cached == 2

    def test_cache_is_scenario_scoped(self, tmp_path):
        def shadow(config):
            return {"doubled": -config["x"]}

        SweepRunner(
            SweepSpec(scenario=double, grid={"x": [1]}), cache_dir=tmp_path
        ).run()
        other = SweepRunner(
            SweepSpec(scenario=shadow, grid={"x": [1]}), cache_dir=tmp_path
        ).run()
        assert other.executed == 1  # no cross-scenario hit
        assert other.result_for({"x": 1})["doubled"] == -1

    def test_corrupt_cache_entry_is_re_executed(self, tmp_path):
        spec = SweepSpec(scenario=double, grid={"x": [7]})
        SweepRunner(spec, cache_dir=tmp_path).run()
        (entry,) = list(tmp_path.glob("*.json"))
        entry.write_text("{not json")
        rerun = SweepRunner(spec, cache_dir=tmp_path).run()
        assert rerun.executed == 1
        assert rerun.result_for({"x": 7})["doubled"] == 14

    def test_no_cache_dir_means_no_files(self, tmp_path):
        SweepRunner(SweepSpec(scenario=double, grid={"x": [1]})).run()
        assert list(tmp_path.iterdir()) == []


class TestManifest:
    def test_manifest_counts_and_entries(self, tmp_path):
        spec = SweepSpec(scenario=double, grid={"x": [1, 2]})
        SweepRunner(spec, cache_dir=tmp_path).run()
        manifest = SweepRunner(spec, cache_dir=tmp_path).run().manifest()
        assert manifest["total"] == 2
        assert manifest["executed"] == 0
        assert manifest["cached"] == 2
        assert all(entry["cached"] for entry in manifest["entries"])
        assert all(len(entry["hash"]) == 64 for entry in manifest["entries"])

    def test_merged_excludes_execution_state(self):
        result = SweepRunner(SweepSpec(scenario=double, grid={"x": [1]})).run()
        merged = result.merged()
        assert set(merged) == {"scenario", "runs"}
        assert set(merged["runs"][0]) == {"config", "result"}


class TestBuiltinScenarios:
    def test_kernel_smoke_is_deterministic(self):
        from repro.sweep.scenarios import kernel_smoke

        first = kernel_smoke({"processes": 6, "interrupt_every": 2})
        second = kernel_smoke({"processes": 6, "interrupt_every": 2})
        assert first == second
        assert first["interrupted"] == 3
        # Every sleeper reports exactly two deliveries, interrupted or not.
        assert len(first["deliveries"]) == 2 * 6

    def test_offload_run_reports_workload_metrics(self):
        from repro.sweep.scenarios import offload_run

        result = offload_run({"jobs": 2, "connectivity": "wifi", "seed": 3})
        assert result["jobs_completed"] == 2
        assert result["failures"] == 0
        assert result["sim_events"] > 0
        canonical_json(result)  # JSON-safe, NaN-free

    def test_offload_run_rejects_unknown_names(self):
        from repro.sweep.scenarios import offload_run

        with pytest.raises(ValueError, match="unknown app"):
            offload_run({"app": "nope"})
        with pytest.raises(ValueError, match="unknown scheduler"):
            offload_run({"scheduler": "psychic"})
        with pytest.raises(ValueError, match="unknown weights"):
            offload_run({"weights": "vibes"})


@pytest.mark.skipif(
    (os.cpu_count() or 1) < 4,
    reason="speedup is only observable with >= 4 cores",
)
def test_four_workers_halve_the_wall_time():
    """The ISSUE acceptance bar: >= 16 configs, 4 workers, <= 0.5x the
    1-worker wall time.  Requires real cores, so skipped on tiny CI."""
    import time

    spec = SweepSpec(
        scenario="repro.sweep.scenarios:offload_run",
        base={"jobs": 60, "app": "nightly_analytics", "spacing_s": 30.0},
        grid={"connectivity": ["3g", "4g", "wifi", "5g"],
              "input_mb": [1.0, 4.0]},
        seeds=2,
    )
    started = time.perf_counter()
    serial = SweepRunner(spec, workers=1).run()
    serial_s = time.perf_counter() - started
    started = time.perf_counter()
    parallel = SweepRunner(spec, workers=4).run()
    parallel_s = time.perf_counter() - started
    assert serial.merged_json() == parallel.merged_json()
    assert len(serial) >= 16
    assert parallel_s <= 0.5 * serial_s, (serial_s, parallel_s)
